/// \file test_resume.cpp
/// Kill-and-resume determinism: for every shipped spec, an enumeration
/// interrupted at 25/50/75% of its state space and resumed from the
/// checkpoint must reproduce the uninterrupted result exactly -- every
/// counter, the error list and the full reachable set -- at 1 and 8
/// threads. Plus the resume-validation guards (a checkpoint only resumes
/// the exact same search).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <tuple>

#include "enumeration/checkpoint.hpp"
#include "enumeration/enumerator.hpp"
#include "protocols/protocols.hpp"
#include "spec/loader.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

/// Two results agree on every deterministic field.
void expect_equal_results(const EnumerationResult& a,
                          const EnumerationResult& b) {
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.visits, b.visits);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.symmetry_skips, b.symmetry_skips);
  EXPECT_EQ(a.errors_truncated, b.errors_truncated);
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (std::size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].state, b.errors[i].state);
    EXPECT_EQ(a.errors[i].detail, b.errors[i].detail);
  }
  EXPECT_EQ(a.reachable, b.reachable);
}

// -- the spec matrix: every .ccp x {25,50,75}% x {1,8} threads ----------

// spec, pct, threads, spill (interrupt + resume with a tiered spill dir)
using MatrixParam = std::tuple<std::string, int, int, bool>;

class KillAndResume : public ::testing::TestWithParam<MatrixParam> {
 protected:
  void SetUp() override {
    // One directory per matrix cell: ctest runs these cases as separate
    // concurrent processes, so a shared directory would be remove_all'd
    // by one case's TearDown while another is mid-checkpoint.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = info->name();  // "Case/param" for TEST_P
    std::replace(name.begin(), name.end(), '/', '_');
    dir_ = fs::temp_directory_path() / ("ccver_resume_test_" + name);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_P(KillAndResume, ResumedRunMatchesUninterrupted) {
  const auto& [spec, pct, threads, spill] = GetParam();
  const fs::path spec_path = fs::path(CCVER_SOURCE_DIR) / "specs" / spec;
  const Protocol p = load_protocol_file(spec_path.string());

  Enumerator::Options base;
  base.n_caches = 4;
  base.threads = static_cast<std::size_t>(threads);
  base.keep_states = true;
  const EnumerationResult full = Enumerator(p, base).run();
  ASSERT_EQ(full.outcome, Outcome::Complete);
  ASSERT_GT(full.states, 0u);

  // Interrupt at pct% of the reachable set. The budget latches strictly
  // before the fixpoint, so the run is guaranteed Partial. Spill cells
  // run the interrupted leg with a watermark-0 spill directory, so the
  // checkpoint carries live spill partitions into the resume.
  const std::uint64_t cut = std::max<std::uint64_t>(
      1, full.states * static_cast<std::uint64_t>(pct) / 100);
  const fs::path ckpt = dir_ / (spec + ".ckpt");
  const fs::path spill_dir = dir_ / "spill";
  Budget budget{Budget::Limits{.max_states = cut}};
  Enumerator::Options interrupted = base;
  interrupted.budget = &budget;
  interrupted.checkpoint_path = ckpt.string();
  if (spill) interrupted.spill_dir = spill_dir.string();
  const EnumerationResult partial = Enumerator(p, interrupted).run();
  ASSERT_EQ(partial.outcome, Outcome::Partial);
  ASSERT_EQ(partial.stop_reason, StopReason::StateBudget);
  ASSERT_TRUE(partial.checkpoint_written);
  ASSERT_LE(partial.states, full.states);

  const EnumCheckpoint cp = load_checkpoint(ckpt);
  Enumerator::Options resumed = base;
  resumed.resume = &cp;
  if (spill) {
    // A checkpoint with live spill partitions refuses to resume without
    // the spill directory -- never a silently wrong answer.
    if (!cp.spill_runs.empty()) {
      EXPECT_THROW((void)Enumerator(p, resumed).run(), SpecError);
    }
    resumed.spill_dir = spill_dir.string();
  }
  const EnumerationResult after = Enumerator(p, resumed).run();
  ASSERT_EQ(after.outcome, Outcome::Complete);
  expect_equal_results(full, after);
}

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> params;
  const fs::path specs = fs::path(CCVER_SOURCE_DIR) / "specs";
  for (const fs::directory_entry& entry : fs::directory_iterator(specs)) {
    if (entry.path().extension() != ".ccp") continue;
    for (const int pct : {25, 50, 75}) {
      for (const int threads : {1, 8}) {
        params.emplace_back(entry.path().filename().string(), pct, threads,
                            false);
      }
    }
    // Spill cells: the 50% cut at both thread widths, enough to exercise
    // partition re-adoption everywhere without tripling the matrix.
    for (const int threads : {1, 8}) {
      params.emplace_back(entry.path().filename().string(), 50, threads,
                          true);
    }
  }
  return params;
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const std::string& spec = std::get<0>(info.param);
  return spec.substr(0, spec.find('.')) + "_" +
         std::to_string(std::get<1>(info.param)) + "pct_" +
         std::to_string(std::get<2>(info.param)) + "t" +
         (std::get<3>(info.param) ? "_spill" : "");
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, KillAndResume,
                         ::testing::ValuesIn(matrix()), matrix_name);

// -- mid-level interrupts at scale --------------------------------------

TEST(ResumeMidLevel, EightThreadInterruptResumesExactly) {
  // A budget that latches mid-sweep under 8 threads: the checkpoint
  // carries a partially expanded frontier (mid_level) and the resumed run
  // must still land on the uninterrupted result exactly.
  const fs::path dir = fs::temp_directory_path() / "ccver_resume_mid";
  fs::create_directories(dir);
  const Protocol p = protocols::moesi_split();

  Enumerator::Options base;
  base.n_caches = 5;
  base.threads = 8;
  base.keep_states = true;
  const EnumerationResult full = Enumerator(p, base).run();

  const fs::path ckpt = dir / "mid.ckpt";
  Budget budget{Budget::Limits{.max_states = full.states / 2}};
  Enumerator::Options interrupted = base;
  interrupted.budget = &budget;
  interrupted.checkpoint_path = ckpt.string();
  const EnumerationResult partial = Enumerator(p, interrupted).run();
  ASSERT_EQ(partial.outcome, Outcome::Partial);

  const EnumCheckpoint cp = load_checkpoint(ckpt);
  Enumerator::Options resumed = base;
  resumed.resume = &cp;
  expect_equal_results(full, Enumerator(p, resumed).run());
  fs::remove_all(dir);
}

TEST(ResumeMidLevel, ChainedInterruptsConverge) {
  // Interrupt, resume with another tight budget, interrupt again, resume
  // to completion: state is never lost or double-counted across multiple
  // checkpoint generations.
  const fs::path dir = fs::temp_directory_path() / "ccver_resume_chain";
  fs::create_directories(dir);
  const Protocol p = protocols::moesi();

  Enumerator::Options base;
  base.n_caches = 5;
  base.threads = 4;
  base.keep_states = true;
  const EnumerationResult full = Enumerator(p, base).run();

  const fs::path ckpt = dir / "chain.ckpt";
  Budget b1{Budget::Limits{.max_states = full.states / 4}};
  Enumerator::Options step = base;
  step.budget = &b1;
  step.checkpoint_path = ckpt.string();
  ASSERT_EQ(Enumerator(p, step).run().outcome, Outcome::Partial);

  // Second leg: resume with a larger (but likely still insufficient)
  // campaign budget. Resume charges the seeded states, so the
  // total-campaign allowance must exceed the first leg's count to make
  // progress. Batched admission can overshoot past the fixpoint, so the
  // leg may occasionally complete outright; either way the final result
  // must match the uninterrupted run.
  EnumCheckpoint cp1 = load_checkpoint(ckpt);
  Budget b2{Budget::Limits{.max_states = full.states * 3 / 4}};
  step.budget = &b2;
  step.resume = &cp1;
  const EnumerationResult second = Enumerator(p, step).run();
  if (second.outcome == Outcome::Complete) {
    expect_equal_results(full, second);
  } else {
    EnumCheckpoint cp2 = load_checkpoint(ckpt);
    Enumerator::Options last = base;
    last.resume = &cp2;
    expect_equal_results(full, Enumerator(p, last).run());
  }
  fs::remove_all(dir);
}

// -- resume validation guards -------------------------------------------

class ResumeValidation : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "ccver_resume_validation";
    fs::create_directories(dir_);
    const Protocol p = protocols::illinois();
    ckpt_ = dir_ / "illinois.ckpt";
    Budget budget{Budget::Limits{.max_states = 3}};
    Enumerator::Options opt;
    opt.n_caches = 4;
    opt.budget = &budget;
    opt.checkpoint_path = ckpt_.string();
    ASSERT_EQ(Enumerator(p, opt).run().outcome, Outcome::Partial);
    cp_ = load_checkpoint(ckpt_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  fs::path ckpt_;
  EnumCheckpoint cp_;
};

TEST_F(ResumeValidation, WrongProtocolIsRejected) {
  Enumerator::Options opt;
  opt.n_caches = 4;
  opt.resume = &cp_;
  EXPECT_THROW((void)Enumerator(protocols::dragon(), opt).run(), SpecError);
}

TEST_F(ResumeValidation, WrongCacheCountIsRejected) {
  Enumerator::Options opt;
  opt.n_caches = 5;
  opt.resume = &cp_;
  EXPECT_THROW((void)Enumerator(protocols::illinois(), opt).run(), SpecError);
}

TEST_F(ResumeValidation, WrongEquivalenceIsRejected) {
  Enumerator::Options opt;
  opt.n_caches = 4;
  opt.equivalence = Equivalence::Strict;
  opt.resume = &cp_;
  EXPECT_THROW((void)Enumerator(protocols::illinois(), opt).run(), SpecError);
}

TEST_F(ResumeValidation, WrongSymmetryModeIsRejected) {
  Enumerator::Options opt;
  opt.n_caches = 4;
  opt.exploit_symmetry = false;
  opt.resume = &cp_;
  EXPECT_THROW((void)Enumerator(protocols::illinois(), opt).run(), SpecError);
}

TEST_F(ResumeValidation, TrackPathsIsIncompatibleWithResume) {
  Enumerator::Options opt;
  opt.n_caches = 4;
  opt.track_paths = true;
  opt.resume = &cp_;
  EXPECT_THROW((void)Enumerator(protocols::illinois(), opt).run(), SpecError);
}

TEST_F(ResumeValidation, TrackPathsIsIncompatibleWithCheckpointing) {
  Enumerator::Options opt;
  opt.n_caches = 4;
  opt.track_paths = true;
  opt.checkpoint_path = (dir_ / "paths.ckpt").string();
  EXPECT_THROW((void)Enumerator(protocols::illinois(), opt).run(), SpecError);
}

}  // namespace
}  // namespace ccver
