/// \file test_random_protocols.cpp
/// Adversarial cross-validation on randomly generated protocols: for every
/// seed, the symbolic verdict and the exhaustive concrete verdict must
/// agree in the sound direction (a concretely reachable erroneous state
/// implies a symbolic error), Theorem-1 coverage must hold regardless of
/// correctness, and the expansion must converge. Random rule tables are
/// mostly incoherent in ways no hand-written protocol is, which makes this
/// the broadest soundness net in the suite.

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "enumeration/coverage.hpp"
#include "enumeration/enumerator.hpp"
#include "protocols/random_protocol.hpp"

namespace ccver {
namespace {

class RandomProtocols : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProtocols, SymbolicCatchesEveryConcreteError) {
  const Protocol p = protocols::random_protocol(GetParam());

  Verifier::Options vopt;
  vopt.build_graph = false;
  vopt.max_visits = 500'000;
  const VerificationReport symbolic = Verifier(p, vopt).verify();

  Enumerator::Options eopt;
  eopt.n_caches = 3;
  const EnumerationResult concrete = Enumerator(p, eopt).run();

  if (!concrete.errors.empty()) {
    EXPECT_FALSE(symbolic.ok)
        << "seed " << GetParam() << ": the enumerator found '"
        << concrete.errors.front().detail
        << "' but the symbolic verifier reported the protocol correct\n"
        << p.describe();
  }
}

TEST_P(RandomProtocols, CoverageHoldsRegardlessOfCorrectness) {
  const Protocol p = protocols::random_protocol(GetParam());
  SymbolicExpander::Options opt;
  opt.max_visits = 500'000;
  const ExpansionResult symbolic = SymbolicExpander(p, opt).run();

  Enumerator::Options eopt;
  eopt.n_caches = 3;
  eopt.keep_states = true;
  const EnumerationResult concrete = Enumerator(p, eopt).run();

  const CoverageReport coverage =
      check_coverage(p, symbolic.essential, concrete.reachable);
  EXPECT_TRUE(coverage.complete())
      << "seed " << GetParam() << ": " << coverage.uncovered.size()
      << " uncovered concrete states, first "
      << to_string(p, coverage.uncovered.empty() ? concrete.reachable[0]
                                                 : coverage.uncovered[0])
      << '\n'
      << p.describe();
}

TEST_P(RandomProtocols, GenerationIsDeterministic) {
  const Protocol a = protocols::random_protocol(GetParam());
  const Protocol b = protocols::random_protocol(GetParam());
  EXPECT_TRUE(a == b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProtocols,
                         ::testing::Range<std::uint64_t>(1, 121),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(RandomProtocolGenerator, ProducesBothVerdicts) {
  // The generator's bias knobs should produce a mix of coherent and
  // incoherent protocols; both outcomes must occur across the seed range
  // (otherwise the agreement test above would be vacuous).
  std::size_t correct = 0;
  std::size_t erroneous = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Protocol p = protocols::random_protocol(seed);
    Verifier::Options opt;
    opt.build_graph = false;
    opt.max_visits = 500'000;
    (Verifier(p, opt).verify().ok ? correct : erroneous) += 1;
  }
  EXPECT_GT(correct, 0u);
  EXPECT_GT(erroneous, 0u);
}

TEST(RandomProtocolGenerator, RespectsStateBounds) {
  protocols::RandomProtocolConfig config;
  config.min_states = 4;
  config.max_states = 4;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const Protocol p = protocols::random_protocol(seed, config);
    EXPECT_EQ(p.state_count(), 4u);
  }
}

}  // namespace
}  // namespace ccver
