/// \file test_budget.cpp
/// Resource budgets: latching semantics, deadline clock, cooperative
/// cancellation, metrics publication, and graceful degradation of the
/// engine loops (enumeration, symbolic expansion, simulation) under each
/// budget kind.

#include <gtest/gtest.h>

#include <thread>

#include "core/verifier.hpp"
#include "enumeration/enumerator.hpp"
#include "protocols/protocols.hpp"
#include "sim/machine.hpp"
#include "util/budget.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace ccver {
namespace {

TEST(Budget, UnlimitedNeverLatches) {
  Budget b;
  b.charge_states(1'000'000);
  b.charge_bytes(1'000'000'000);
  EXPECT_EQ(b.poll(), StopReason::None);
  EXPECT_EQ(b.latched(), StopReason::None);
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.remaining_ns(), UINT64_MAX);
}

TEST(Budget, StateBudgetLatchesAtCrossingAndIsSticky) {
  Budget b{Budget::Limits{.max_states = 10}};
  b.charge_states(9);
  EXPECT_EQ(b.latched(), StopReason::None);
  b.charge_states(1);  // reaches the allowance: spent
  EXPECT_EQ(b.latched(), StopReason::StateBudget);
  // Later charges (even of a different kind) never overwrite the first
  // latched reason.
  b.charge_bytes(1'000'000'000);
  b.cancel();
  EXPECT_EQ(b.poll(), StopReason::StateBudget);
  EXPECT_EQ(b.states_charged(), 10u);
}

TEST(Budget, ByteBudgetLatches) {
  Budget b{Budget::Limits{.max_bytes = 1024}};
  b.charge_bytes(1000);
  EXPECT_EQ(b.latched(), StopReason::None);
  b.charge_bytes(100);
  EXPECT_EQ(b.latched(), StopReason::MemoryBudget);
  EXPECT_EQ(b.bytes_charged(), 1100u);
}

TEST(Budget, DeadlineLatchesOnPoll) {
  Budget b{Budget::Limits{.deadline_ns = 1}};
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // The clock is only consulted by poll(), never by latched().
  EXPECT_EQ(b.latched(), StopReason::None);
  EXPECT_EQ(b.poll(), StopReason::Deadline);
  EXPECT_EQ(b.latched(), StopReason::Deadline);
  EXPECT_EQ(b.remaining_ns(), 0u);
}

TEST(Budget, CancelLatchesCancelled) {
  Budget b;
  b.cancel();
  EXPECT_EQ(b.poll(), StopReason::Cancelled);
}

TEST(Budget, ExhaustFailpointLatchesFailpoint) {
  ScopedFailpoints fp("budget.exhaust=2");
  Budget b;
  EXPECT_EQ(b.poll(), StopReason::None);  // first hit: not armed for it
  EXPECT_EQ(b.poll(), StopReason::Failpoint);
  EXPECT_EQ(b.poll(), StopReason::Failpoint);  // sticky
}

TEST(Budget, PublishExportsCountersAndReason) {
  Budget b{Budget::Limits{.max_states = 5}};
  b.charge_states(7);
  b.charge_bytes(33);
  MetricsRegistry metrics;
  b.publish(metrics);
  const MetricsSnapshot snap = metrics.snapshot();
  ASSERT_TRUE(snap.counters.contains("budget.states_charged"));
  EXPECT_EQ(snap.counters.at("budget.states_charged"), 7u);
  ASSERT_TRUE(snap.counters.contains("budget.bytes_charged"));
  EXPECT_EQ(snap.counters.at("budget.bytes_charged"), 33u);
  ASSERT_TRUE(snap.gauges.contains("budget.exhausted"));
  EXPECT_EQ(snap.gauges.at("budget.exhausted"), 1.0);
}

TEST(Budget, ToStringCoversEveryEnumerator) {
  EXPECT_EQ(to_string(Outcome::Complete), "complete");
  EXPECT_EQ(to_string(Outcome::Partial), "partial");
  EXPECT_EQ(to_string(StopReason::None), "none");
  EXPECT_EQ(to_string(StopReason::Deadline), "deadline");
  EXPECT_EQ(to_string(StopReason::StateBudget), "state-budget");
  EXPECT_EQ(to_string(StopReason::MemoryBudget), "memory-budget");
  EXPECT_EQ(to_string(StopReason::Cancelled), "cancelled");
  EXPECT_EQ(to_string(StopReason::Failpoint), "failpoint");
}

// -- graceful degradation of the engine loops ---------------------------

TEST(BudgetEngines, EnumerationStopsPartialOnStateBudget) {
  const Protocol p = protocols::moesi_split();
  Budget budget{Budget::Limits{.max_states = 50}};
  Enumerator::Options opt;
  opt.n_caches = 5;
  opt.budget = &budget;
  const EnumerationResult r = Enumerator(p, opt).run();
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.stop_reason, StopReason::StateBudget);
  EXPECT_GE(r.states, 50u);  // everything admitted before the stop is kept
  EXPECT_FALSE(r.checkpoint_written);  // no checkpoint_path given
}

TEST(BudgetEngines, EnumerationCompletesUnderGenerousBudget) {
  const Protocol p = protocols::illinois();
  Budget budget{Budget::Limits{.max_states = 1'000'000}};
  Enumerator::Options opt;
  opt.n_caches = 3;
  opt.budget = &budget;
  const EnumerationResult r = Enumerator(p, opt).run();
  EXPECT_EQ(r.outcome, Outcome::Complete);
  EXPECT_EQ(r.stop_reason, StopReason::None);
}

TEST(BudgetEngines, EnumerationStopsOnImmediateDeadline) {
  const Protocol p = protocols::moesi();
  Budget budget{Budget::Limits{.deadline_ns = 1}};
  Enumerator::Options opt;
  opt.n_caches = 6;
  opt.threads = 4;
  opt.budget = &budget;
  const EnumerationResult r = Enumerator(p, opt).run();
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.stop_reason, StopReason::Deadline);
}

TEST(BudgetEngines, VerifierReportsPartialOnCancelledBudget) {
  const Protocol p = protocols::illinois();
  Budget budget;
  budget.cancel();
  Verifier::Options opt;
  opt.budget = &budget;
  const VerificationReport r = Verifier(p, opt).verify();
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.stop_reason, StopReason::Cancelled);
  // A partial expansion must never claim full verification.
  EXPECT_NE(r.summary(p).find("PARTIAL"), std::string::npos);
}

TEST(BudgetEngines, SimulationStopsPartialOnStateBudget) {
  const Protocol p = protocols::illinois();
  Budget budget{Budget::Limits{.max_states = 500}};
  Machine::Options opt;
  opt.n_cpus = 4;
  opt.budget = &budget;
  TraceConfig cfg;
  cfg.n_cpus = 4;
  cfg.length = 100'000;
  const SimResult r = Machine(p, opt).run(generate_trace(cfg));
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.stop_reason, StopReason::StateBudget);
  EXPECT_LT(r.stats.reads + r.stats.writes + r.stats.stalls +
                r.stats.replacements,
            100'000u);
}

TEST(BudgetEngines, SimulationCompletesWithoutBudget) {
  const Protocol p = protocols::illinois();
  Machine::Options opt;
  opt.n_cpus = 2;
  TraceConfig cfg;
  cfg.n_cpus = 2;
  cfg.length = 1'000;
  const SimResult r = Machine(p, opt).run(generate_trace(cfg));
  EXPECT_EQ(r.outcome, Outcome::Complete);
  EXPECT_EQ(r.stats.reads + r.stats.writes + r.stats.stalls +
                r.stats.replacements,
            1'000u);
}

}  // namespace
}  // namespace ccver
