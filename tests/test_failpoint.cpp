/// \file test_failpoint.cpp
/// The chaos harness: failpoint spec grammar, trigger semantics (every
/// hit / N-th hit / N-th onward), statistics, and the engine-level
/// guarantee that every shipped failpoint degrades into a structured
/// error or a clean recovery -- never a hang, crash or corrupted result.

#include <gtest/gtest.h>

#include <filesystem>
#include <new>

#include "enumeration/enumerator.hpp"
#include "protocols/protocols.hpp"
#include "spec/loader.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

TEST(Failpoint, UnarmedNeverFires) {
  failpoints_clear();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(CCV_FAILPOINT("test.unarmed"));
  }
}

TEST(Failpoint, PlainNameFiresOnEveryHit) {
  ScopedFailpoints fp("test.every");
  EXPECT_TRUE(CCV_FAILPOINT("test.every"));
  EXPECT_TRUE(CCV_FAILPOINT("test.every"));
  EXPECT_FALSE(CCV_FAILPOINT("test.other"));  // names are independent
}

TEST(Failpoint, NthHitIsOneShot) {
  ScopedFailpoints fp("test.third=3");
  EXPECT_FALSE(CCV_FAILPOINT("test.third"));
  EXPECT_FALSE(CCV_FAILPOINT("test.third"));
  EXPECT_TRUE(CCV_FAILPOINT("test.third"));
  EXPECT_FALSE(CCV_FAILPOINT("test.third"));  // one-shot: fired and done
}

TEST(Failpoint, NthOnwardFiresFromNth) {
  ScopedFailpoints fp("test.onward=2+");
  EXPECT_FALSE(CCV_FAILPOINT("test.onward"));
  EXPECT_TRUE(CCV_FAILPOINT("test.onward"));
  EXPECT_TRUE(CCV_FAILPOINT("test.onward"));
}

TEST(Failpoint, CommaSeparatedSpecArmsSeveral) {
  ScopedFailpoints fp("test.a, test.b=2");
  EXPECT_TRUE(CCV_FAILPOINT("test.a"));
  EXPECT_FALSE(CCV_FAILPOINT("test.b"));
  EXPECT_TRUE(CCV_FAILPOINT("test.b"));
}

TEST(Failpoint, MalformedSpecThrowsSpecError) {
  EXPECT_THROW(failpoints_configure("test.bad="), SpecError);
  EXPECT_THROW(failpoints_configure("test.bad=x"), SpecError);
  EXPECT_THROW(failpoints_configure("test.bad=0"), SpecError);
  EXPECT_THROW(failpoints_configure("=3"), SpecError);
  failpoints_clear();
}

TEST(Failpoint, StatsCountHitsAndFires) {
  ScopedFailpoints fp("test.stats=2");
  (void)CCV_FAILPOINT("test.stats");
  (void)CCV_FAILPOINT("test.stats");
  (void)CCV_FAILPOINT("test.stats");
  const std::vector<FailpointStat> stats = failpoint_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "test.stats");
  EXPECT_EQ(stats[0].hits, 3u);
  EXPECT_EQ(stats[0].fires, 1u);
}

TEST(Failpoint, PublishExportsPerFailpointCounters) {
  ScopedFailpoints fp("test.metrics");
  (void)CCV_FAILPOINT("test.metrics");
  MetricsRegistry metrics;
  failpoints_publish(metrics);
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_TRUE(snap.counters.contains("failpoint.test.metrics.hits"));
  EXPECT_TRUE(snap.counters.contains("failpoint.test.metrics.fires"));
}

TEST(Failpoint, ClearDisarmsAndResetsStats) {
  failpoints_configure("test.clear");
  (void)CCV_FAILPOINT("test.clear");
  failpoints_clear();
  EXPECT_FALSE(CCV_FAILPOINT("test.clear"));
  EXPECT_TRUE(failpoint_stats().empty());
}

// -- shipped failpoints: fault -> structured error or clean recovery ----

TEST(FailpointChaos, KernelScratchAllocSurfacesAsBadAlloc) {
  ScopedFailpoints fp("kernel.scratch_alloc=3");
  const Protocol p = protocols::moesi();
  Enumerator::Options opt;
  opt.n_caches = 4;
  opt.threads = 4;
  EXPECT_THROW((void)Enumerator(p, opt).run(), std::bad_alloc);
  // The pool drained cleanly: the same options run fine immediately after
  // (the one-shot trigger has fired), proving no lock or thread was lost.
  failpoints_clear();
  const EnumerationResult r = Enumerator(p, opt).run();
  EXPECT_EQ(r.outcome, Outcome::Complete);
}

TEST(FailpointChaos, SpecLoadIoSurfacesAsLocatedIoError) {
  ScopedFailpoints fp("spec.load_io");
  const fs::path spec =
      fs::path(CCVER_SOURCE_DIR) / "specs" / "illinois.ccp";
  try {
    (void)load_protocol_file(spec.string());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("illinois.ccp"), std::string::npos);
  }
}

TEST(FailpointChaos, WorkerThrowDrainsAndPropagatesFirstError) {
  // Satellite regression: a throwing task under 8 threads must propagate
  // exactly one error after a clean drain, and the pool must stay usable.
  ScopedFailpoints fp("pool.worker_throw=5+");
  ThreadPool pool(8);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for_dynamic(0, 10'000, 64,
                                [&](std::size_t b, std::size_t e,
                                    std::size_t) {
                                  completed += static_cast<int>(e - b);
                                }),
      InternalError);
  failpoints_clear();
  // Reusable after the failure: a full bulk call completes every index.
  completed = 0;
  pool.parallel_for(0, 1'000, [&](std::size_t b, std::size_t e, std::size_t) {
    completed += static_cast<int>(e - b);
  });
  EXPECT_EQ(completed.load(), 1'000);
}

TEST(FailpointChaos, BodyExceptionUnderEightThreadsPropagatesOnce) {
  ThreadPool pool(8);
  std::atomic<int> throws_prepared{0};
  try {
    pool.parallel_for(0, 8'000,
                      [&](std::size_t b, std::size_t, std::size_t) {
                        if (b % 2 == 0) {
                          throws_prepared.fetch_add(1);
                          throw std::runtime_error("task failure");
                        }
                      });
    FAIL() << "expected the first worker error to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failure");
  }
  EXPECT_GE(throws_prepared.load(), 1);
  // Multiple workers threw, exactly one exception reached the caller, and
  // the pool still completes subsequent bulk work.
  std::atomic<int> done{0};
  pool.parallel_for(0, 100, [&](std::size_t b, std::size_t e, std::size_t) {
    done += static_cast<int>(e - b);
  });
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
}  // namespace ccver
