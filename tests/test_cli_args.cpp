/// \file test_cli_args.cpp
/// The shared command-line parser: flag/value pairing, boolean flags,
/// checked positional access, and the error messages the `ccverify`
/// front end prints verbatim.

#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccver {
namespace {

const std::vector<std::string> kBooleans = {"--strict", "--json", "--stats"};

CliArgs parse(std::initializer_list<const char*> tokens) {
  return parse_cli_args(std::vector<std::string>(tokens.begin(), tokens.end()),
                        kBooleans);
}

TEST(CliArgs, SeparatesPositionalsAndFlags) {
  const CliArgs args =
      parse({"illinois", "--caches", "4", "--strict", "extra"});
  ASSERT_EQ(args.positional.size(), 2u);
  EXPECT_EQ(args.positional[0], "illinois");
  EXPECT_EQ(args.positional[1], "extra");
  EXPECT_EQ(args.get("--caches", ""), "4");
  EXPECT_TRUE(args.has("--strict"));
  EXPECT_FALSE(args.has("--json"));
}

TEST(CliArgs, BooleanFlagConsumesNoValue) {
  // `--strict` must not swallow `illinois` as its value.
  const CliArgs args = parse({"--strict", "illinois"});
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "illinois");
  EXPECT_EQ(args.get("--strict", "sentinel"), "1");
}

TEST(CliArgs, ValueFlagAtEndOfArgvThrows) {
  EXPECT_THROW(parse({"illinois", "--caches"}), SpecError);
  try {
    parse({"illinois", "--caches"});
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("--caches"), std::string::npos);
  }
}

TEST(CliArgs, BooleanThenValueFlagAtEndOfArgv) {
  // Regression for the exact shape `enumerate foo --strict --caches`:
  // the boolean parses, the dangling value flag is the reported error.
  try {
    parse({"foo", "--strict", "--caches"});
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("--caches"), std::string::npos);
  }
  // And the reverse order pairs `--caches --strict` as flag + value --
  // documented behavior: value flags greedily take the next token.
  const CliArgs args = parse({"foo", "--caches", "--strict"});
  EXPECT_EQ(args.get("--caches", ""), "--strict");
  EXPECT_FALSE(args.has("--strict"));
}

TEST(CliArgs, PositionalAtReportsWhatIsMissing) {
  const CliArgs args = parse({"illinois"});
  EXPECT_EQ(args.positional_at(0, "protocol"), "illinois");
  try {
    (void)args.positional_at(1, "protocol b");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("protocol b"), std::string::npos);
  }
}

TEST(CliArgs, GetNumberParsesAndReportsBadInput) {
  const CliArgs args = parse({"--caches", "12", "--seed", "banana"});
  EXPECT_EQ(args.get_number("--caches", 4), 12u);
  EXPECT_EQ(args.get_number("--threads", 4), 4u);  // fallback
  try {
    (void)args.get_number("--seed", 1);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--seed"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
  }
}

TEST(CliArgs, RepeatedFlagKeepsLastValue) {
  const CliArgs args = parse({"--caches", "2", "--caches", "8"});
  EXPECT_EQ(args.get_number("--caches", 0), 8u);
}

TEST(CliArgs, ArgvWrapperSkipsCommandPrefix) {
  const char* argv[] = {"ccverify", "enumerate", "illinois", "--json"};
  const CliArgs args = parse_cli_args(4, argv, 2, kBooleans);
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "illinois");
  EXPECT_TRUE(args.has("--json"));
}

}  // namespace
}  // namespace ccver
