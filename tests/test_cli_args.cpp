/// \file test_cli_args.cpp
/// The shared command-line parser: flag/value pairing, boolean flags,
/// checked positional access, and the error messages the `ccverify`
/// front end prints verbatim.

#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccver {
namespace {

const std::vector<std::string> kBooleans = {"--strict", "--json", "--stats"};

CliArgs parse(std::initializer_list<const char*> tokens) {
  return parse_cli_args(std::vector<std::string>(tokens.begin(), tokens.end()),
                        kBooleans);
}

TEST(CliArgs, SeparatesPositionalsAndFlags) {
  const CliArgs args =
      parse({"illinois", "--caches", "4", "--strict", "extra"});
  ASSERT_EQ(args.positional.size(), 2u);
  EXPECT_EQ(args.positional[0], "illinois");
  EXPECT_EQ(args.positional[1], "extra");
  EXPECT_EQ(args.get("--caches", ""), "4");
  EXPECT_TRUE(args.has("--strict"));
  EXPECT_FALSE(args.has("--json"));
}

TEST(CliArgs, BooleanFlagConsumesNoValue) {
  // `--strict` must not swallow `illinois` as its value.
  const CliArgs args = parse({"--strict", "illinois"});
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "illinois");
  EXPECT_EQ(args.get("--strict", "sentinel"), "1");
}

TEST(CliArgs, ValueFlagAtEndOfArgvThrows) {
  EXPECT_THROW(parse({"illinois", "--caches"}), SpecError);
  try {
    parse({"illinois", "--caches"});
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("--caches"), std::string::npos);
  }
}

TEST(CliArgs, BooleanThenValueFlagAtEndOfArgv) {
  // Regression for the exact shape `enumerate foo --strict --caches`:
  // the boolean parses, the dangling value flag is the reported error.
  try {
    parse({"foo", "--strict", "--caches"});
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("--caches"), std::string::npos);
  }
  // And the reverse order pairs `--caches --strict` as flag + value --
  // documented behavior: value flags greedily take the next token.
  const CliArgs args = parse({"foo", "--caches", "--strict"});
  EXPECT_EQ(args.get("--caches", ""), "--strict");
  EXPECT_FALSE(args.has("--strict"));
}

TEST(CliArgs, PositionalAtReportsWhatIsMissing) {
  const CliArgs args = parse({"illinois"});
  EXPECT_EQ(args.positional_at(0, "protocol"), "illinois");
  try {
    (void)args.positional_at(1, "protocol b");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("protocol b"), std::string::npos);
  }
}

TEST(CliArgs, GetNumberParsesAndReportsBadInput) {
  const CliArgs args = parse({"--caches", "12", "--seed", "banana"});
  EXPECT_EQ(args.get_number("--caches", 4), 12u);
  EXPECT_EQ(args.get_number("--threads", 4), 4u);  // fallback
  try {
    (void)args.get_number("--seed", 1);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--seed"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
  }
}

TEST(CliArgs, RepeatedFlagKeepsLastValue) {
  const CliArgs args = parse({"--caches", "2", "--caches", "8"});
  EXPECT_EQ(args.get_number("--caches", 0), 8u);
}

TEST(CliArgs, ArgvWrapperSkipsCommandPrefix) {
  const char* argv[] = {"ccverify", "enumerate", "illinois", "--json"};
  const CliArgs args = parse_cli_args(4, argv, 2, kBooleans);
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "illinois");
  EXPECT_TRUE(args.has("--json"));
}

TEST(ParseDuration, AcceptsEveryUnitAndBareSeconds) {
  EXPECT_EQ(parse_duration_ns("250ns"), 250u);
  EXPECT_EQ(parse_duration_ns("7us"), 7'000u);
  EXPECT_EQ(parse_duration_ns("15ms"), 15'000'000u);
  EXPECT_EQ(parse_duration_ns("2s"), 2'000'000'000u);
  EXPECT_EQ(parse_duration_ns("3m"), 180'000'000'000u);
  EXPECT_EQ(parse_duration_ns("1h"), 3'600'000'000'000u);
  EXPECT_EQ(parse_duration_ns("30"), 30'000'000'000u);  // bare = seconds
  EXPECT_EQ(parse_duration_ns(" 5s "), 5'000'000'000u);  // trimmed
}

TEST(ParseDuration, RejectsMalformedAndZero) {
  EXPECT_THROW((void)parse_duration_ns(""), SpecError);
  EXPECT_THROW((void)parse_duration_ns("banana"), SpecError);
  EXPECT_THROW((void)parse_duration_ns("10fortnights"), SpecError);
  EXPECT_THROW((void)parse_duration_ns("0s"), SpecError);
  EXPECT_THROW((void)parse_duration_ns("-5s"), SpecError);
}

TEST(ParseByteSize, AcceptsBinaryMultiplesCaseInsensitively) {
  EXPECT_EQ(parse_byte_size("512"), 512u);  // bare = bytes
  EXPECT_EQ(parse_byte_size("2K"), 2048u);
  EXPECT_EQ(parse_byte_size("2k"), 2048u);
  EXPECT_EQ(parse_byte_size("3M"), 3u << 20);
  EXPECT_EQ(parse_byte_size("1G"), 1u << 30);
  EXPECT_EQ(parse_byte_size("4KB"), 4096u);
  EXPECT_EQ(parse_byte_size("4KiB"), 4096u);
  EXPECT_EQ(parse_byte_size("100B"), 100u);
}

TEST(ParseByteSize, RejectsMalformedAndZero) {
  EXPECT_THROW((void)parse_byte_size(""), SpecError);
  EXPECT_THROW((void)parse_byte_size("lots"), SpecError);
  EXPECT_THROW((void)parse_byte_size("1T"), SpecError);
  EXPECT_THROW((void)parse_byte_size("0M"), SpecError);
}

TEST(ParseDuration, RejectsOverflowAsLocatedUsageError) {
  // 999999999 hours overflows uint64 nanoseconds; the parser must say so
  // (naming the input) instead of wrapping silently into a tiny deadline.
  try {
    (void)parse_duration_ns("999999999h");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("999999999h"), std::string::npos);
    EXPECT_NE(what.find("overflow"), std::string::npos);
  }
  EXPECT_THROW((void)parse_duration_ns("18446744073709551616ns"), SpecError);
  // The largest representable values still parse.
  EXPECT_EQ(parse_duration_ns("18446744073709551615ns"), UINT64_MAX);
  EXPECT_EQ(parse_duration_ns("5124095h"),
            5'124'095ULL * 3'600'000'000'000ULL);
}

TEST(ParseByteSize, RejectsOverflowAsLocatedUsageError) {
  try {
    (void)parse_byte_size("1000000000000g");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1000000000000g"), std::string::npos);
    EXPECT_NE(what.find("overflow"), std::string::npos);
  }
  EXPECT_THROW((void)parse_byte_size("18446744073709551616"), SpecError);
  EXPECT_EQ(parse_byte_size("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(parse_byte_size("17179869183G"), 17'179'869'183ULL << 30);
}

}  // namespace
}  // namespace ccver
