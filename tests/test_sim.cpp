/// \file test_sim.cpp
/// Trace generation and simulator tests: determinism, gold-value checking
/// across every protocol and workload pattern, parallel/sequential
/// equivalence, capacity-driven replacements, and the guarantee that the
/// states a simulation visits are covered by the symbolic essential states.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/expansion.hpp"
#include "enumeration/coverage.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"
#include "sim/machine.hpp"

namespace ccver {
namespace {

TraceConfig small_config(TracePattern pattern, std::uint64_t seed = 7) {
  TraceConfig cfg;
  cfg.n_cpus = 4;
  cfg.n_blocks = 16;
  cfg.length = 4'000;
  cfg.seed = seed;
  cfg.pattern = pattern;
  return cfg;
}

TEST(Trace, DeterministicAcrossCalls) {
  const TraceConfig cfg = small_config(TracePattern::Uniform);
  EXPECT_EQ(generate_trace(cfg), generate_trace(cfg));
}

TEST(Trace, DifferentSeedsDiffer) {
  EXPECT_NE(generate_trace(small_config(TracePattern::Uniform, 1)),
            generate_trace(small_config(TracePattern::Uniform, 2)));
}

TEST(Trace, RespectsEventCount) {
  const auto trace = generate_trace(small_config(TracePattern::HotSet));
  std::size_t accesses = 0;
  for (const TraceEvent& e : trace) {
    if (e.op != StdOps::Replace) ++accesses;
  }
  EXPECT_EQ(accesses, 4'000u);
}

TEST(Trace, CapacityEmitsReplacements) {
  TraceConfig cfg = small_config(TracePattern::Uniform);
  cfg.capacity = 2;  // 16 blocks through 2-entry caches: many evictions
  const auto trace = generate_trace(cfg);
  const auto replacements =
      std::count_if(trace.begin(), trace.end(), [](const TraceEvent& e) {
        return e.op == StdOps::Replace;
      });
  EXPECT_GT(replacements, 100);
}

TEST(Trace, ProducerConsumerWritesComeFromProducer) {
  TraceConfig cfg = small_config(TracePattern::ProducerConsumer);
  for (const TraceEvent& e : generate_trace(cfg)) {
    if (e.op == StdOps::Write) {
      EXPECT_EQ(e.cpu, e.block % cfg.n_cpus);
    }
  }
}

struct SimParam {
  std::string protocol;
  TracePattern pattern;
};

class SimSweep : public ::testing::TestWithParam<SimParam> {};

TEST_P(SimSweep, NoStaleReadsAndStatesCovered) {
  const Protocol p = protocols::by_name(GetParam().protocol);
  TraceConfig cfg = small_config(GetParam().pattern);
  cfg.capacity = 4;

  Machine::Options opt;
  opt.n_cpus = cfg.n_cpus;
  opt.collect_states = true;
  const SimResult result = Machine(p, opt).run(generate_trace(cfg));

  EXPECT_TRUE(result.errors.empty())
      << result.errors.front().detail << " (block "
      << result.errors.front().block << ")";
  EXPECT_EQ(result.stats.stale_reads, 0u);
  EXPECT_GT(result.stats.misses, 0u);

  const ExpansionResult symbolic = SymbolicExpander(p).run();
  const CoverageReport coverage =
      check_coverage(p, symbolic.essential, result.states_seen);
  EXPECT_TRUE(coverage.complete())
      << coverage.uncovered.size() << " simulated states not covered";
}

std::vector<SimParam> sim_params() {
  std::vector<SimParam> params;
  for (const protocols::NamedProtocol& np : protocols::all()) {
    for (const TracePattern pat :
         {TracePattern::Uniform, TracePattern::HotSet,
          TracePattern::Migratory, TracePattern::ProducerConsumer}) {
      params.push_back(SimParam{np.name, pat});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, SimSweep, ::testing::ValuesIn(sim_params()),
    [](const ::testing::TestParamInfo<SimParam>& param_info) {
      std::string name = param_info.param.protocol + "_";
      for (const char c : to_string(param_info.param.pattern)) {
        if (c != '-') name += c;
      }
      return name;
    });

TEST(Machine, ParallelMatchesSequential) {
  const Protocol p = protocols::dragon();
  TraceConfig cfg = small_config(TracePattern::Uniform);
  cfg.n_blocks = 32;
  const auto trace = generate_trace(cfg);

  Machine::Options seq;
  seq.n_cpus = cfg.n_cpus;
  seq.threads = 1;
  Machine::Options par = seq;
  par.threads = 4;

  const SimResult rs = Machine(p, seq).run(trace);
  const SimResult rp = Machine(p, par).run(trace);
  EXPECT_EQ(rs.stats.reads, rp.stats.reads);
  EXPECT_EQ(rs.stats.misses, rp.stats.misses);
  EXPECT_EQ(rs.stats.invalidations, rp.stats.invalidations);
  EXPECT_EQ(rs.stats.writebacks, rp.stats.writebacks);
  EXPECT_EQ(rs.stats.bus_transactions, rp.stats.bus_transactions);
}

TEST(Machine, InvalidateProtocolsInvalidate) {
  const Protocol p = protocols::illinois();
  TraceConfig cfg = small_config(TracePattern::HotSet);
  Machine::Options opt;
  opt.n_cpus = cfg.n_cpus;
  const SimResult r = Machine(p, opt).run(generate_trace(cfg));
  EXPECT_GT(r.stats.invalidations, 0u);
  EXPECT_EQ(r.stats.updates, 0u);  // Illinois never broadcasts data
}

TEST(Machine, BroadcastProtocolsUpdate) {
  const Protocol p = protocols::dragon();
  TraceConfig cfg = small_config(TracePattern::HotSet);
  Machine::Options opt;
  opt.n_cpus = cfg.n_cpus;
  const SimResult r = Machine(p, opt).run(generate_trace(cfg));
  EXPECT_GT(r.stats.updates, 0u);
  EXPECT_EQ(r.stats.invalidations, 0u);  // Dragon never invalidates
}

TEST(Machine, BuggyProtocolProducesStaleReads) {
  const Protocol p = protocols::illinois_no_invalidate_on_write_hit();
  TraceConfig cfg = small_config(TracePattern::HotSet);
  cfg.length = 20'000;
  Machine::Options opt;
  opt.n_cpus = cfg.n_cpus;
  const SimResult r = Machine(p, opt).run(generate_trace(cfg));
  EXPECT_FALSE(r.errors.empty());
}

}  // namespace
}  // namespace ccver
