/// \file test_concurrent_containment_index.cpp
/// The concurrent subsumption index behind parallel symbolic expansion:
/// serial-API semantics (the PR-6 index contract), the decided-key cache,
/// exactly-once CAS admission and tombstoning under an 8-thread hammer,
/// concurrent probe/evict interleavings, forced liveness-segment growth,
/// and -- the property the parallel engine rests on -- answer-equivalence
/// between the serial API, the shared-lock API and a plain linear scan on
/// real state populations from every shipped spec.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/composite_key.hpp"
#include "core/concurrent_containment_index.hpp"
#include "core/expansion.hpp"
#include "protocols/protocols.hpp"
#include "spec/loader.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHammerThreads = 8;

/// Launches `kHammerThreads` threads, releases them simultaneously, joins.
template <typename Body>
void hammer(Body&& body) {
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  for (std::size_t t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      body(t);
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
}

class ConcurrentIndexTest : public ::testing::Test {
 protected:
  const Protocol p = protocols::illinois();

  [[nodiscard]] CompositeState parse(std::string_view text) const {
    return CompositeState::parse(p, text);
  }
};

// --- Serial API: the PR-6 index contract --------------------------------

TEST_F(ConcurrentIndexTest, FindsSubsumingStateNotJustEqualOnes) {
  ConcurrentContainmentIndex index(PruningMode::Containment);
  const CompositeState broad = parse("(Shared+, Inv*) level=many");
  const CompositeState narrow = parse("(Shared+) level=many");
  std::vector<CompositeState> archive = {broad};
  index.insert(0, archive[0]);

  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };
  ASSERT_TRUE(narrow.contained_in(broad));
  EXPECT_TRUE(index.any_subsuming(narrow, CompositeKey::pack(narrow),
                                  CompositeKey::masks(narrow), state_of));
  EXPECT_TRUE(index.any_subsuming(broad, CompositeKey::pack(broad),
                                  CompositeKey::masks(broad), state_of));
}

TEST_F(ConcurrentIndexTest, EqualityModeMatchesOnlyExactDuplicates) {
  ConcurrentContainmentIndex index(PruningMode::EqualityOnly);
  const CompositeState broad = parse("(Shared+, Inv*) level=many");
  const CompositeState narrow = parse("(Shared+) level=many");
  std::vector<CompositeState> archive = {broad};
  index.insert(0, archive[0]);

  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };
  EXPECT_FALSE(index.any_subsuming(narrow, CompositeKey::pack(narrow),
                                   CompositeKey::masks(narrow), state_of));
  EXPECT_TRUE(index.any_subsuming(broad, CompositeKey::pack(broad),
                                  CompositeKey::masks(broad), state_of));
}

TEST_F(ConcurrentIndexTest, TombstoneLifecycleGatesAnswers) {
  ConcurrentContainmentIndex index(PruningMode::Containment);
  std::vector<CompositeState> archive = {parse("(Shared+, Inv*) level=many")};
  index.insert(0, archive[0]);
  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };
  const CompositeState q = parse("(Shared+) level=many");
  const CompositeKey key = CompositeKey::pack(q);
  const CompositeKey::ClassMasks m = CompositeKey::masks(q);
  EXPECT_TRUE(index.any_subsuming(q, key, m, state_of));
  index.deactivate(0);
  EXPECT_FALSE(index.alive(0));
  EXPECT_FALSE(index.any_subsuming(q, key, m, state_of));
  index.activate(0);
  EXPECT_TRUE(index.any_subsuming(q, key, m, state_of));
}

TEST_F(ConcurrentIndexTest, EvictContainedTombstonesExactlyTheContained) {
  ConcurrentContainmentIndex index(PruningMode::Containment);
  std::vector<CompositeState> archive = {
      parse("(Shared+) level=many"),        // contained in newcomer
      parse("(Shared, Inv*) level=one"),    // different level: kept
      parse("(Shared+, Inv+) level=many"),  // contained in newcomer
  };
  for (std::size_t i = 0; i < archive.size(); ++i) index.insert(i, archive[i]);
  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };

  const CompositeState newcomer = parse("(Shared+, Inv*) level=many");
  std::vector<std::size_t> evicted;
  index.evict_contained(newcomer, CompositeKey::masks(newcomer), state_of,
                        [&](std::size_t i) { evicted.push_back(i); });
  std::sort(evicted.begin(), evicted.end());  // shard walk order is internal
  EXPECT_EQ(evicted, (std::vector<std::size_t>{0, 2}));
  EXPECT_FALSE(index.alive(0));
  EXPECT_TRUE(index.alive(1));
  EXPECT_FALSE(index.alive(2));
}

TEST_F(ConcurrentIndexTest, LivenessSurvivesSegmentGrowth) {
  // Indices beyond the first 1024-entry liveness segment force segment
  // allocation; flags from every segment must keep answering.
  ConcurrentContainmentIndex index(PruningMode::Containment);
  const CompositeState s = parse("(Shared+) level=many");
  const std::uint64_t allocs0 = index.shard_allocs();
  for (const std::size_t idx : {std::size_t{0}, std::size_t{1023},
                                std::size_t{1024}, std::size_t{5000},
                                std::size_t{40000}}) {
    index.insert(idx, s);
    EXPECT_TRUE(index.alive(idx)) << idx;
  }
  EXPECT_FALSE(index.alive(1));
  EXPECT_FALSE(index.alive(39999));
  index.deactivate(5000);
  EXPECT_FALSE(index.alive(5000));
  EXPECT_TRUE(index.alive(40000));
  EXPECT_GT(index.shard_allocs(), allocs0);
}

// --- Decided-key cache --------------------------------------------------

TEST(DecidedKeyCacheTest, InsertThenContainsAcrossGrowth) {
  // Distinct canonical keys from real runs: every archive entry of every
  // library protocol (EqualityOnly archives are duplicate-free per run;
  // cross-protocol collisions are deduplicated here). The pool comfortably
  // exceeds the 128-slot initial table, forcing at least one growth.
  std::vector<CompositeKey> keys;
  {
    std::unordered_set<CompositeKey, CompositeKey::Hash> seen;
    for (const protocols::NamedProtocol& np : protocols::all()) {
      SymbolicExpander::Options opt;
      opt.pruning = PruningMode::EqualityOnly;
      const ExpansionResult r = SymbolicExpander(np.factory(), opt).run();
      for (const ArchiveEntry& e : r.archive) {
        const CompositeKey k = CompositeKey::pack(e.state);
        if (seen.insert(k).second) keys.push_back(k);
      }
    }
  }
  ASSERT_GT(keys.size(), 128u) << "population too small to force cache growth";

  DecidedKeyCache cache;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_FALSE(cache.contains(keys[i], keys[i].hash())) << i;
    cache.insert(keys[i], keys[i].hash());
    cache.insert(keys[i], keys[i].hash());  // idempotent
    EXPECT_TRUE(cache.contains(keys[i], keys[i].hash())) << i;
  }
  EXPECT_EQ(cache.size(), keys.size());
  // Growth must not lose earlier keys.
  for (const CompositeKey& k : keys) {
    EXPECT_TRUE(cache.contains(k, k.hash()));
  }
}

// --- 8-thread hammers ---------------------------------------------------

TEST_F(ConcurrentIndexTest, SharedInsertAdmitsExactlyOnce) {
  ConcurrentContainmentIndex index(PruningMode::Containment);
  const CompositeState s = parse("(Shared+, Inv*) level=many");
  const CompositeKey key = CompositeKey::pack(s);
  const CompositeKey::ClassMasks m = CompositeKey::masks(s);

  constexpr std::size_t kIndices = 512;
  std::atomic<std::size_t> wins{0};
  hammer([&](std::size_t) {
    for (std::size_t idx = 0; idx < kIndices; ++idx) {
      if (index.try_insert_shared(idx, s, key, m)) {
        wins.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Exactly one racing caller per index wins, and every index ends alive
  // with exactly one entry behind it.
  EXPECT_EQ(wins.load(), kIndices);
  EXPECT_EQ(index.entry_count(), kIndices);
  for (std::size_t idx = 0; idx < kIndices; ++idx) {
    EXPECT_TRUE(index.alive(idx)) << idx;
  }
}

TEST_F(ConcurrentIndexTest, TryDeactivateClaimsEachTombstoneOnce) {
  ConcurrentContainmentIndex index(PruningMode::Containment);
  const CompositeState s = parse("(Shared+) level=many");
  constexpr std::size_t kIndices = 512;
  for (std::size_t idx = 0; idx < kIndices; ++idx) index.insert(idx, s);

  std::atomic<std::size_t> claims{0};
  hammer([&](std::size_t) {
    for (std::size_t idx = 0; idx < kIndices; ++idx) {
      if (index.try_deactivate(idx)) {
        claims.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(claims.load(), kIndices);
  for (std::size_t idx = 0; idx < kIndices; ++idx) {
    EXPECT_FALSE(index.alive(idx)) << idx;
  }
  // Never-inserted indices cannot be claimed.
  EXPECT_FALSE(index.try_deactivate(kIndices + 7));
}

TEST_F(ConcurrentIndexTest, ConcurrentProbesEvictionsAndAdmissions) {
  // Writers admit fresh states, evictors tombstone everything contained
  // in a broad newcomer, probers hammer reads -- the interleaving the
  // parallel engine's generation phase exhibits, with the added twist of
  // concurrent admission (which the engine itself serializes). Checks:
  // no eviction is reported twice, and the final live set is consistent.
  const std::vector<CompositeState> states = {
      parse("(Shared+) level=many"),
      parse("(Shared+, Inv+) level=many"),
      parse("(Shared+, Inv*) level=many"),
      parse("(Dirty) level=one"),
      parse("(Dirty, Inv*) level=one"),
  };
  const CompositeState broad = parse("(Shared+, Inv*) level=many");

  for (int round = 0; round < 50; ++round) {
    ConcurrentContainmentIndex index(PruningMode::Containment);
    std::vector<CompositeState> archive;
    archive.reserve(kHammerThreads * states.size());
    for (std::size_t t = 0; t < kHammerThreads; ++t) {
      for (const CompositeState& s : states) archive.push_back(s);
    }
    const auto state_of = [&](std::size_t i) -> const CompositeState& {
      return archive[i];
    };

    std::atomic<std::size_t> evictions{0};
    hammer([&](std::size_t t) {
      ConcurrentContainmentIndex::ProbeStats stats;
      const std::size_t base = t * states.size();
      for (std::size_t i = 0; i < states.size(); ++i) {
        const CompositeState& s = archive[base + i];
        (void)index.try_insert_shared(base + i, s, CompositeKey::pack(s),
                                      CompositeKey::masks(s));
        (void)index.probe_subsuming_shared(s, CompositeKey::pack(s),
                                           CompositeKey::masks(s), state_of,
                                           stats);
        index.evict_contained_shared(
            broad, CompositeKey::masks(broad), state_of,
            [&](std::size_t) {
              evictions.fetch_add(1, std::memory_order_relaxed);
            });
      }
      index.merge_probe_stats(stats);
    });

    // Everything contained in `broad` (states 0..2 of each thread) is
    // dead; each eviction was reported exactly once (CAS-claimed), and
    // nothing else was touched.
    std::size_t dead = 0;
    for (std::size_t i = 0; i < archive.size(); ++i) {
      const bool contained = archive[i].contained_in(broad);
      if (contained) {
        EXPECT_FALSE(index.alive(i)) << i;
        ++dead;
      } else {
        EXPECT_TRUE(index.alive(i)) << i;
      }
    }
    EXPECT_EQ(evictions.load(), dead);
  }
}

TEST_F(ConcurrentIndexTest, ParallelProbesAgreeWithSerialAnswers) {
  // Freeze a real population (the engine's generation-phase reads run
  // against a frozen index), then hammer shared probes and compare each
  // answer with the serial API's.
  const Protocol moesi = protocols::moesi();
  SymbolicExpander::Options opt;
  opt.pruning = PruningMode::Containment;
  const ExpansionResult r = SymbolicExpander(moesi, opt).run();

  ConcurrentContainmentIndex index(PruningMode::Containment);
  for (std::size_t i = 0; i < r.archive.size(); ++i) {
    index.insert(i, r.archive[i].state);
    if (i % 3 == 0) index.deactivate(i);
  }
  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return r.archive[i].state;
  };
  std::vector<bool> serial;
  serial.reserve(r.archive.size());
  for (const ArchiveEntry& e : r.archive) {
    serial.push_back(index.any_subsuming(e.state, CompositeKey::pack(e.state),
                                         CompositeKey::masks(e.state),
                                         state_of));
  }

  std::atomic<std::size_t> mismatches{0};
  hammer([&](std::size_t) {
    ConcurrentContainmentIndex::ProbeStats stats;
    for (std::size_t i = 0; i < r.archive.size(); ++i) {
      const CompositeState& q = r.archive[i].state;
      const bool got = index.probe_subsuming_shared(
          q, CompositeKey::pack(q), CompositeKey::masks(q), state_of, stats);
      if (got != serial[i]) mismatches.fetch_add(1);
    }
    index.merge_probe_stats(stats);
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

// --- Equivalence with a linear scan on every shipped spec ---------------

TEST(ConcurrentIndexEquivalence, AgreesWithLinearScanOnAllSpecPopulations) {
  const fs::path specs = fs::path(CCVER_SOURCE_DIR) / "specs";
  std::size_t checked = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(specs)) {
    if (entry.path().extension() != ".ccp") continue;
    const Protocol p = load_protocol_file(entry.path());
    SymbolicExpander::Options opt;
    opt.pruning = PruningMode::EqualityOnly;  // densest population
    const ExpansionResult r = SymbolicExpander(p, opt).run();

    for (const PruningMode mode :
         {PruningMode::Containment, PruningMode::EqualityOnly}) {
      ConcurrentContainmentIndex index(mode);
      for (std::size_t i = 0; i < r.archive.size(); ++i) {
        index.insert(i, r.archive[i].state);
        if (i % 3 == 0) index.deactivate(i);  // exercise tombstones
      }
      const auto state_of = [&](std::size_t i) -> const CompositeState& {
        return r.archive[i].state;
      };
      ConcurrentContainmentIndex::ProbeStats stats;
      for (const ArchiveEntry& e : r.archive) {
        bool scan = false;
        for (std::size_t i = 0; i < r.archive.size(); ++i) {
          if (!index.alive(i)) continue;
          if (mode == PruningMode::Containment
                  ? e.state.contained_in(r.archive[i].state)
                  : e.state == r.archive[i].state) {
            scan = true;
            break;
          }
        }
        const CompositeKey key = CompositeKey::pack(e.state);
        const CompositeKey::ClassMasks m = CompositeKey::masks(e.state);
        EXPECT_EQ(index.any_subsuming(e.state, key, m, state_of), scan)
            << p.name() << ": " << e.state.to_string(p);
        EXPECT_EQ(
            index.probe_subsuming_shared(e.state, key, m, state_of, stats),
            scan)
            << p.name() << " (shared): " << e.state.to_string(p);
      }
      index.merge_probe_stats(stats);
    }
    ++checked;
  }
  EXPECT_GE(checked, 11u);
}

}  // namespace
}  // namespace ccver
