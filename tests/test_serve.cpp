/// \file test_serve.cpp
/// The `ccverify serve` subsystem: NDJSON framing round-trips, the
/// single-flight result cache, thread-pool task submission, per-job budget
/// isolation, admission shedding and graceful drain -- each exercised at
/// the layer where its guarantee lives, plus end-to-end streams through a
/// real `Server` over pipes and a Unix socket.

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/report_json.hpp"
#include "core/verifier.hpp"
#include "enumeration/enumerator.hpp"
#include "enumeration/report_json.hpp"
#include "protocols/protocols.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ccver {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(ServeJson, ParsesScalarsObjectsAndArrays) {
  const JsonValue v = parse_json(
      R"({"a": 1, "b": "two", "c": [true, false, null], "d": {"e": 2.5}})");
  ASSERT_EQ(v.kind, JsonValue::Kind::Object);
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_TRUE(v.find("a")->is_unsigned);
  EXPECT_EQ(v.find("a")->unsigned_number, 1u);
  EXPECT_EQ(v.find("b")->string, "two");
  ASSERT_EQ(v.find("c")->array.size(), 3u);
  EXPECT_TRUE(v.find("c")->array[0].boolean);
  EXPECT_EQ(v.find("c")->array[2].kind, JsonValue::Kind::Null);
  EXPECT_DOUBLE_EQ(v.find("d")->find("e")->number, 2.5);
}

TEST(ServeJson, DecodesEscapesAndSurrogatePairs) {
  const JsonValue v =
      parse_json(R"({"s": "a\"b\\c\ndAé😀"})");
  // A = 'A'; é = e-acute (2 UTF-8 bytes); the surrogate pair is
  // U+1F600 (4 UTF-8 bytes).
  EXPECT_EQ(v.find("s")->string,
            std::string("a\"b\\c\ndA\xc3\xa9\xf0\x9f\x98\x80"));
}

TEST(ServeJson, LocatesErrorsByByteOffset) {
  try {
    (void)parse_json(R"({"a": })");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("byte 6"), std::string::npos);
  }
}

TEST(ServeJson, RejectsHostileInputs) {
  // Unbounded nesting must be cut off, not recursed into.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  EXPECT_THROW((void)parse_json(deep), SpecError);
  // Duplicate keys are ambiguous, integer overflow is not silently folded,
  // and trailing content means the line held more than one document.
  EXPECT_THROW((void)parse_json(R"({"a":1,"a":2})"), SpecError);
  EXPECT_THROW((void)parse_json("18446744073709551616"), SpecError);
  EXPECT_THROW((void)parse_json("{} trailing"), SpecError);
  EXPECT_THROW((void)parse_json(""), SpecError);
}

TEST(ServeJson, LargestUnsignedSurvivesExactly) {
  const JsonValue v = parse_json("18446744073709551615");
  EXPECT_TRUE(v.is_unsigned);
  EXPECT_EQ(v.unsigned_number, UINT64_MAX);
}

// ------------------------------------------------------------- framing --

TEST(ServeProtocol, ParsesAFullJobRequest) {
  const ParsedRequest pr = parse_request(
      R"({"op":"job","verb":"enumerate","protocol":"MSI","id":"j1",)"
      R"("equivalence":"strict","n":6,"deadline":"5s","mem_budget":"64M",)"
      R"("max_states":1000,"max_visits":50,"checkpoint":"x.ckpt",)"
      R"("stats":true})",
      7);
  ASSERT_TRUE(pr.ok) << pr.error;
  const ServeRequest& r = pr.request;
  EXPECT_EQ(r.op, RequestOp::Job);
  EXPECT_EQ(r.verb, ServeRequest::Verb::Enumerate);
  EXPECT_EQ(r.source, SpecSource::Library);
  EXPECT_EQ(r.spec, "MSI");
  EXPECT_EQ(r.id, "j1");
  EXPECT_EQ(r.seq, 7u);
  EXPECT_EQ(r.equivalence, Equivalence::Strict);
  EXPECT_EQ(r.n_caches, 6u);
  EXPECT_EQ(r.limits.deadline_ns, 5'000'000'000u);
  EXPECT_EQ(r.limits.max_bytes, 64u << 20);
  EXPECT_EQ(r.limits.max_states, 1000u);
  EXPECT_EQ(r.max_visits, 50u);
  EXPECT_EQ(r.checkpoint, "x.ckpt");
  EXPECT_TRUE(r.want_stats);
}

TEST(ServeProtocol, MalformedRequestsComeBackAsLocatedErrors) {
  const auto expect_error = [](std::string_view line,
                               std::string_view needle) {
    const ParsedRequest pr = parse_request(line, 3);
    EXPECT_FALSE(pr.ok) << line;
    EXPECT_NE(pr.error.find("request 3"), std::string::npos) << pr.error;
    EXPECT_NE(pr.error.find(needle), std::string::npos) << pr.error;
  };
  expect_error("not json", "byte");
  expect_error(R"({"op":"job","verb":"verify"})", "protocol");
  expect_error(R"({"op":"job","verb":"dance","protocol":"MSI"})", "verb");
  expect_error(R"({"op":"fly"})", "op");
  expect_error(R"({"op":"job","verb":"verify","protocol":"MSI","x":1})",
               "x");
  expect_error(
      R"({"op":"job","verb":"verify","protocol":"A","spec":"B"})",
      "exactly one");
  expect_error(
      R"({"op":"job","verb":"verify","protocol":"M","deadline":"wat"})",
      "wat");
  expect_error(R"({"op":"job","verb":"verify","protocol":"M","n":0})", "n");
}

TEST(ServeProtocol, SalvagesClientIdFromInvalidRequests) {
  const ParsedRequest pr =
      parse_request(R"({"id":"req-9","op":"job","verb":"nope"})", 1);
  EXPECT_FALSE(pr.ok);
  EXPECT_EQ(pr.id, "req-9");
}

TEST(ServeProtocol, ResponseEnvelopeRoundTrips) {
  const std::string line = render_job_response(
      "j1", 4, JobStatus::Partial, R"({"ok":false})", "stopped", false);
  const JsonValue v = parse_json(line);
  EXPECT_EQ(v.find("id")->string, "j1");
  EXPECT_EQ(v.find("seq")->unsigned_number, 4u);
  EXPECT_EQ(v.find("status")->string, "partial");
  EXPECT_EQ(v.find("exit_code")->unsigned_number, 4u);
  EXPECT_FALSE(v.find("cached")->boolean);
  EXPECT_EQ(v.find("error")->string, "stopped");
  EXPECT_EQ(v.find("payload")->find("ok")->boolean, false);

  const JsonValue c = parse_json(render_control_response("p", 1, "ping"));
  EXPECT_EQ(c.find("status")->string, "ok");
  EXPECT_EQ(c.find("op")->string, "ping");
}

TEST(ServeProtocol, StatusEnumMirrorsExitTaxonomy) {
  EXPECT_EQ(job_status_exit_code(JobStatus::Verified), 0);
  EXPECT_EQ(job_status_exit_code(JobStatus::ProtocolErrors), 1);
  EXPECT_EQ(job_status_exit_code(JobStatus::UsageError), 2);
  EXPECT_EQ(job_status_exit_code(JobStatus::InternalError), 3);
  EXPECT_EQ(job_status_exit_code(JobStatus::Partial), 4);
  EXPECT_EQ(job_status_exit_code(JobStatus::Overloaded), -1);
  EXPECT_EQ(to_string(JobStatus::Overloaded), "overloaded");
}

// ----------------------------------------------------------- job layer --

TEST(ServeJob, EffectiveLimitsIntersectRequestAndCeiling) {
  Budget::Limits requested;
  requested.deadline_ns = 10;
  requested.max_states = 0;  // unlimited: takes the ceiling
  requested.max_bytes = 500;
  Budget::Limits ceiling;
  ceiling.deadline_ns = 5;  // tighter than the request: wins
  ceiling.max_states = 100;
  ceiling.max_bytes = 0;  // no ceiling: request stands
  const Budget::Limits got = effective_limits(requested, ceiling);
  EXPECT_EQ(got.deadline_ns, 5u);
  EXPECT_EQ(got.max_states, 100u);
  EXPECT_EQ(got.max_bytes, 500u);
}

TEST(ServeJob, CacheKeySeparatesVerbOptionsAndLintText) {
  const Protocol p = protocols::by_name("MSI");
  ServeRequest verify;
  verify.verb = ServeRequest::Verb::Verify;
  verify.spec = "MSI";
  ServeRequest enumerate = verify;
  enumerate.verb = ServeRequest::Verb::Enumerate;
  ServeRequest enumerate5 = enumerate;
  enumerate5.n_caches = 5;
  ServeRequest strict = enumerate;
  strict.equivalence = Equivalence::Strict;
  const std::uint64_t kv = job_cache_key(verify, p);
  const std::uint64_t ke = job_cache_key(enumerate, p);
  const std::uint64_t ke5 = job_cache_key(enumerate5, p);
  const std::uint64_t ks = job_cache_key(strict, p);
  EXPECT_NE(kv, ke);
  EXPECT_NE(ke, ke5);
  EXPECT_NE(ke, ks);
  // Verify ignores n (it is not an input of the symbolic engine).
  ServeRequest verify9 = verify;
  verify9.n_caches = 9;
  EXPECT_EQ(kv, job_cache_key(verify9, p));
  // Lint keys include the spec text: same protocol, different formatting,
  // different spans -- must not share a verdict.
  ServeRequest lint_a = verify;
  lint_a.verb = ServeRequest::Verb::Lint;
  ServeRequest lint_b = lint_a;
  lint_b.spec = "MSI ";
  EXPECT_NE(job_cache_key(lint_a, p), job_cache_key(lint_b, p));
}

TEST(ServeJob, DefaultBudgetDetectsAnyLimit) {
  ServeRequest r;
  EXPECT_TRUE(default_budget(r));
  r.max_visits = 1;
  EXPECT_FALSE(default_budget(r));
  r.max_visits = 0;
  r.limits.deadline_ns = 1;
  EXPECT_FALSE(default_budget(r));
}

TEST(ServeJob, VerifyPayloadMatchesOneShotJsonByteForByte) {
  const Protocol p = protocols::by_name("Illinois");
  ServeRequest request;
  request.verb = ServeRequest::Verb::Verify;
  request.spec = "Illinois";
  Budget budget;
  const JobResult got = run_job(request, p, budget, 0, nullptr);
  EXPECT_EQ(got.status, JobStatus::Verified);

  Budget cli_budget;
  Verifier::Options opt;
  opt.budget = &cli_budget;
  const VerificationReport report = Verifier(p, opt).verify();
  EXPECT_EQ(got.payload, report_to_json(report, p));
}

TEST(ServeJob, EnumeratePayloadMatchesOneShotJsonByteForByte) {
  const Protocol p = protocols::by_name("MSI");
  ServeRequest request;
  request.verb = ServeRequest::Verb::Enumerate;
  request.spec = "MSI";
  request.n_caches = 3;
  Budget budget;
  const JobResult got = run_job(request, p, budget, 0, nullptr);
  EXPECT_EQ(got.status, JobStatus::Verified);

  Budget cli_budget;
  Enumerator::Options opt;
  opt.n_caches = 3;
  opt.budget = &cli_budget;
  const EnumerationResult r = Enumerator(p, opt).run();
  EXPECT_EQ(got.payload,
            enumeration_to_json(p, 3, Equivalence::Counting, r));
}

TEST(ServeJob, LintParseErrorBecomesDiagnosticNotUsageError) {
  ServeRequest request;
  request.verb = ServeRequest::Verb::Lint;
  request.source = SpecSource::Inline;
  request.spec = "this is not a protocol";
  try {
    (void)resolve_job_protocol(request);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const JobResult result = lint_parse_error_result(request, e);
    EXPECT_EQ(result.status, JobStatus::ProtocolErrors);
    EXPECT_NE(result.payload.find("parse-error"), std::string::npos);
    EXPECT_NE(result.payload.find("\"file\":\"spec\""), std::string::npos);
  }
}

// ---------------------------------------------------------- result cache --

TEST(ResultCacheTest, OwnerPublishesThenHits) {
  ResultCache cache(ResultCache::Options{4});
  ResultCache::Lookup first = cache.acquire(1);
  ASSERT_EQ(first.role, ResultCache::Role::Owner);
  cache.publish(1, JobResult{JobStatus::Verified, "payload", ""}, true);
  const ResultCache::Lookup second = cache.acquire(1);
  EXPECT_EQ(second.role, ResultCache::Role::Hit);
  EXPECT_EQ(second.result.payload, "payload");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, UncacheablePublishServesWaitersButForgets) {
  ResultCache cache(ResultCache::Options{4});
  ASSERT_EQ(cache.acquire(1).role, ResultCache::Role::Owner);
  std::atomic<int> waited{0};
  std::thread waiter([&] {
    const ResultCache::Lookup w = cache.acquire(1);
    EXPECT_EQ(w.role, ResultCache::Role::Waited);
    EXPECT_EQ(w.result.status, JobStatus::Partial);
    waited.store(1);
  });
  // Give the waiter time to block, then publish uncacheably.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.publish(1, JobResult{JobStatus::Partial, "", "stopped"}, false);
  waiter.join();
  EXPECT_EQ(waited.load(), 1);
  // Nothing retained: the next acquire owns a fresh run.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.acquire(1).role, ResultCache::Role::Owner);
  cache.abandon(1);
}

TEST(ResultCacheTest, AbandonedOwnerDoesNotWedgeTheKey) {
  ResultCache cache(ResultCache::Options{4});
  ASSERT_EQ(cache.acquire(7).role, ResultCache::Role::Owner);
  std::thread retrier([&] {
    // Blocks behind the first owner; its abandon makes this the new owner.
    const ResultCache::Lookup w = cache.acquire(7);
    EXPECT_EQ(w.role, ResultCache::Role::Owner);
    cache.publish(7, JobResult{JobStatus::Verified, "second", ""}, true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.abandon(7);
  retrier.join();
  const ResultCache::Lookup hit = cache.acquire(7);
  EXPECT_EQ(hit.role, ResultCache::Role::Hit);
  EXPECT_EQ(hit.result.payload, "second");
}

TEST(ResultCacheTest, SingleFlightDeduplicatesConcurrentIdenticalJobs) {
  ResultCache cache(ResultCache::Options{8});
  ASSERT_EQ(cache.acquire(3).role, ResultCache::Role::Owner);
  std::atomic<int> waited_count{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      const ResultCache::Lookup w = cache.acquire(3);
      EXPECT_EQ(w.result.payload, "shared");
      if (w.role == ResultCache::Role::Waited) waited_count.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.publish(3, JobResult{JobStatus::Verified, "shared", ""}, true);
  for (std::thread& t : waiters) t.join();
  // Every follower shared the owner's run (some may land after the publish
  // and count as plain hits; none may have re-run).
  MetricsRegistry metrics;
  cache.publish_metrics(metrics);
  const MetricsSnapshot s = metrics.snapshot();
  EXPECT_EQ(s.counters.at("serve.cache.misses"), 1u);
  EXPECT_EQ(s.counters.at("serve.cache.waits"),
            static_cast<std::uint64_t>(waited_count.load()));
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  ResultCache cache(ResultCache::Options{2});
  for (std::uint64_t key : {1u, 2u}) {
    ASSERT_EQ(cache.acquire(key).role, ResultCache::Role::Owner);
    cache.publish(key, JobResult{JobStatus::Verified, "p", ""}, true);
  }
  // Touch 1 so 2 is the LRU victim when 3 arrives.
  EXPECT_EQ(cache.acquire(1).role, ResultCache::Role::Hit);
  ASSERT_EQ(cache.acquire(3).role, ResultCache::Role::Owner);
  cache.publish(3, JobResult{JobStatus::Verified, "p", ""}, true);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.acquire(1).role, ResultCache::Role::Hit);
  EXPECT_EQ(cache.acquire(2).role, ResultCache::Role::Owner);  // evicted
  cache.abandon(2);
}

TEST(ResultCacheTest, FailpointForcesEvictionForChaosRuns) {
  ResultCache cache(ResultCache::Options{4});
  ASSERT_EQ(cache.acquire(1).role, ResultCache::Role::Owner);
  cache.publish(1, JobResult{JobStatus::Verified, "p", ""}, true);
  const ScopedFailpoints fp("serve.cache_evict");
  // Armed: the retained verdict is forcibly forgotten, so what would have
  // been a hit becomes a fresh owner -- the cache-thrash path.
  EXPECT_EQ(cache.acquire(1).role, ResultCache::Role::Owner);
  cache.abandon(1);
}

TEST(ResultCacheTest, FlushDropsRetainedVerdicts) {
  ResultCache cache(ResultCache::Options{4});
  ASSERT_EQ(cache.acquire(1).role, ResultCache::Role::Owner);
  cache.publish(1, JobResult{JobStatus::Verified, "p", ""}, true);
  cache.flush();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.acquire(1).role, ResultCache::Role::Owner);
  cache.abandon(1);
}

// ------------------------------------------------------ thread pool tasks --

TEST(ThreadPoolTasks, SubmitRunsTasksAndWaitIdleBarriers) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(pool.tasks_pending(), 0u);
}

TEST(ThreadPoolTasks, HelperlessPoolRunsInline) {
  ThreadPool pool(1);  // no helper threads
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  // Inline execution: the task finished before submit returned.
  EXPECT_EQ(ran.load(), 1);
  pool.wait_idle();
}

TEST(ThreadPoolTasks, TaskExceptionIsStashedNotFatal) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);  // the pool survived the throwing task
  const std::exception_ptr error = pool.take_task_error();
  ASSERT_NE(error, nullptr);
  try {
    std::rethrow_exception(error);
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  EXPECT_EQ(pool.take_task_error(), nullptr);  // take clears
}

TEST(ThreadPoolTasks, TasksCoexistWithBulkCalls) {
  ThreadPool pool(3);
  std::atomic<int> task_ran{0};
  std::atomic<int> bulk_ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&task_ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      task_ran.fetch_add(1);
    });
  }
  pool.parallel_for(0, 64, [&bulk_ran](std::size_t b, std::size_t e,
                                       std::size_t /*worker*/) {
    bulk_ran.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(bulk_ran.load(), 64);
  pool.wait_idle();
  EXPECT_EQ(task_ran.load(), 8);
}

// -------------------------------------------------------------- server --

/// Runs a server over pipes: writes `input` to its stdin, drains at EOF,
/// returns the full response stream.
std::string run_server_stdio(const Server::Options& options,
                             const std::string& input) {
  int in_pipe[2];
  int out_pipe[2];
  EXPECT_EQ(::pipe(in_pipe), 0);
  EXPECT_EQ(::pipe(out_pipe), 0);
  Server server(options);
  int rc = -1;
  std::thread server_thread(
      [&] { rc = server.run_stdio(in_pipe[0], out_pipe[1]); });
  std::string output;
  std::thread reader([&] {
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(out_pipe[0], chunk, sizeof chunk)) > 0) {
      output.append(chunk, static_cast<std::size_t>(n));
    }
  });
  EXPECT_TRUE(::write(in_pipe[1], input.data(), input.size()) ==
              static_cast<ssize_t>(input.size()));
  ::close(in_pipe[1]);
  server_thread.join();
  ::close(out_pipe[1]);
  reader.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  EXPECT_EQ(rc, 0);  // graceful drain always exits 0
  return output;
}

/// Splits a response stream into parsed lines keyed by id.
std::map<std::string, JsonValue> by_id(const std::string& output) {
  std::map<std::string, JsonValue> responses;
  std::size_t start = 0;
  while (start < output.size()) {
    std::size_t end = output.find('\n', start);
    if (end == std::string::npos) end = output.size();
    JsonValue v = parse_json(output.substr(start, end - start));
    responses[v.find("id")->string] = std::move(v);
    start = end + 1;
  }
  return responses;
}

TEST(ServeServer, MixedStreamOverStdio) {
  Server::Options options;
  options.workers = 2;
  const std::string output = run_server_stdio(
      options,
      "{\"op\":\"ping\",\"id\":\"p\"}\n"
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"Illinois\","
      "\"id\":\"v1\"}\n"
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"Illinois\","
      "\"id\":\"v2\"}\n"
      "this is not json\n"
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"NoSuch\","
      "\"id\":\"bad\"}\n"
      "{\"op\":\"job\",\"verb\":\"lint\",\"spec\":\"garbage\","
      "\"id\":\"l\"}\n");
  const auto responses = by_id(output);
  ASSERT_EQ(responses.count("p"), 1u);
  EXPECT_EQ(responses.at("p").find("status")->string, "ok");
  EXPECT_EQ(responses.at("v1").find("status")->string, "verified");
  EXPECT_EQ(responses.at("v2").find("status")->string, "verified");
  EXPECT_EQ(responses.at("bad").find("status")->string, "usage-error");
  EXPECT_EQ(responses.at("l").find("status")->string, "protocol-errors");
  // The malformed line got a located error response with an empty id.
  ASSERT_EQ(responses.count(""), 1u);
  EXPECT_EQ(responses.at("").find("status")->string, "usage-error");
  EXPECT_NE(responses.at("").find("error")->string.find("byte"),
            std::string::npos);
  // The repeat spec was served from the cache; payloads are identical.
  const bool v1_cached = responses.at("v1").find("cached")->boolean;
  const bool v2_cached = responses.at("v2").find("cached")->boolean;
  EXPECT_TRUE(v1_cached || v2_cached);
  EXPECT_FALSE(v1_cached && v2_cached);
}

TEST(ServeServer, PerJobBudgetIsolation) {
  Server::Options options;
  options.workers = 1;
  const std::string output = run_server_stdio(
      options,
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"MOESISplit\","
      "\"deadline\":\"1ns\",\"id\":\"starved\"}\n"
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"MOESISplit\","
      "\"id\":\"free\"}\n");
  const auto responses = by_id(output);
  // The 1ns job degrades to Partial; the default-budget job on the same
  // worker is untouched by its neighbor's exhaustion.
  EXPECT_EQ(responses.at("starved").find("status")->string, "partial");
  EXPECT_EQ(responses.at("starved").find("exit_code")->unsigned_number, 4u);
  EXPECT_EQ(responses.at("free").find("status")->string, "verified");
}

TEST(ServeServer, OversizedRequestIsRefusedAndStreamRecovers) {
  Server::Options options;
  options.workers = 1;
  options.max_request_bytes = 256;
  std::string big = "{\"op\":\"job\",\"verb\":\"lint\",\"spec\":\"";
  big.append(1000, 'x');
  big += "\",\"id\":\"big\"}\n";
  const std::string output = run_server_stdio(
      options,
      big + "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"MSI\","
            "\"id\":\"after\"}\n");
  const auto responses = by_id(output);
  ASSERT_EQ(responses.count(""), 1u);
  EXPECT_EQ(responses.at("").find("status")->string, "usage-error");
  EXPECT_NE(responses.at("").find("error")->string.find("exceeds"),
            std::string::npos);
  // The stream survived: the next request was served normally.
  EXPECT_EQ(responses.at("after").find("status")->string, "verified");
}

TEST(ServeServer, ShutdownOpStopsAdmissionAndDrains) {
  Server::Options options;
  options.workers = 1;
  const std::string output = run_server_stdio(
      options,
      "{\"op\":\"shutdown\",\"id\":\"s\"}\n"
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"MSI\","
      "\"id\":\"late\"}\n");
  const auto responses = by_id(output);
  EXPECT_EQ(responses.at("s").find("status")->string, "ok");
  // The job behind the shutdown in the same chunk was shed, not run.
  EXPECT_EQ(responses.at("late").find("status")->string, "overloaded");
  EXPECT_NE(responses.at("late").find("error")->string.find("drain"),
            std::string::npos);
}

TEST(ServeServer, AdmissionControlShedsWhenFull) {
  // A FIFO with no writer blocks the only worker inside spec resolution,
  // deterministically: job q1 holds the worker, q2 fills the queue, q3
  // must be shed with `overloaded`. Unblocking the FIFO lets the stream
  // finish and drain.
  char dir_template[] = "/tmp/ccv_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string fifo = std::string(dir_template) + "/spec.ccp";
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

  Server::Options options;
  options.workers = 1;
  options.max_queue = 2;
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  Server server(options);
  int rc = -1;
  std::thread server_thread(
      [&] { rc = server.run_stdio(in_pipe[0], out_pipe[1]); });

  const std::string requests =
      "{\"op\":\"job\",\"verb\":\"verify\",\"path\":\"" + fifo +
      "\",\"id\":\"q1\"}\n"
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"MSI\","
      "\"id\":\"q2\"}\n"
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"MSI\","
      "\"id\":\"q3\"}\n";
  ASSERT_EQ(::write(in_pipe[1], requests.data(), requests.size()),
            static_cast<ssize_t>(requests.size()));

  // The first response must be q3's rejection (q1 is blocked on the FIFO,
  // q2 sits in the queue).
  std::string output;
  while (output.find('\n') == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::read(out_pipe[0], chunk, sizeof chunk);
    ASSERT_GT(n, 0);
    output.append(chunk, static_cast<std::size_t>(n));
  }
  {
    const JsonValue first =
        parse_json(output.substr(0, output.find('\n')));
    EXPECT_EQ(first.find("id")->string, "q3");
    EXPECT_EQ(first.find("status")->string, "overloaded");
    EXPECT_NE(first.find("error")->string.find("queue full"),
              std::string::npos);
  }

  // Unblock the worker: give the FIFO a writer (empty content -> the spec
  // fails to parse, which is fine -- the job just has to finish).
  const int wfd = ::open(fifo.c_str(), O_WRONLY);
  ASSERT_GE(wfd, 0);
  ::close(wfd);
  ::close(in_pipe[1]);  // EOF -> drain
  std::thread reader([&] {
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(out_pipe[0], chunk, sizeof chunk)) > 0) {
      output.append(chunk, static_cast<std::size_t>(n));
    }
  });
  server_thread.join();
  ::close(out_pipe[1]);
  reader.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  EXPECT_EQ(rc, 0);

  const auto responses = by_id(output);
  // q1 resolved (to some error verdict -- an empty spec), q2 ran normally.
  EXPECT_NE(responses.at("q1").find("status")->string, "overloaded");
  EXPECT_EQ(responses.at("q2").find("status")->string, "verified");
  ::unlink(fifo.c_str());
  ::rmdir(dir_template);
}

TEST(ServeServer, UnixSocketRoundTripAndShutdown) {
  char dir_template[] = "/tmp/ccv_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string path = std::string(dir_template) + "/serve.sock";

  Server::Options options;
  options.workers = 2;
  Server server(options);
  int rc = -1;
  std::thread server_thread([&] { rc = server.run_unix(path); });

  // Wait for the socket to appear, then connect.
  int fd = -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(fd, 0) << "could not connect to " << path;

  const std::string requests =
      "{\"op\":\"job\",\"verb\":\"enumerate\",\"protocol\":\"MSI\","
      "\"n\":3,\"id\":\"e\"}\n"
      "{\"op\":\"shutdown\",\"id\":\"s\"}\n";
  ASSERT_EQ(::write(fd, requests.data(), requests.size()),
            static_cast<ssize_t>(requests.size()));
  std::string output;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
    output.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server_thread.join();
  EXPECT_EQ(rc, 0);

  const auto responses = by_id(output);
  EXPECT_EQ(responses.at("e").find("status")->string, "verified");
  EXPECT_EQ(responses.at("s").find("status")->string, "ok");
  const MetricsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.counters.at("serve.jobs.admitted"), 1u);
  EXPECT_EQ(stats.counters.at("serve.connections.accepted"), 1u);
}

TEST(ServeServer, SpillJobFeedsSpillAndBudgetStats) {
  char dir_template[] = "/tmp/ccv_serve_spill_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string spill_dir = std::string(dir_template) + "/spill";

  Server::Options options;
  options.workers = 1;
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  Server server(options);
  int rc = -1;
  std::thread server_thread(
      [&] { rc = server.run_stdio(in_pipe[0], out_pipe[1]); });
  std::string output;
  std::thread reader([&] {
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(out_pipe[0], chunk, sizeof chunk)) > 0) {
      output.append(chunk, static_cast<std::size_t>(n));
    }
  });
  // No mem_budget: the job-level default watermark is then 0, so the run
  // spills at every level barrier -- deterministic spill traffic.
  const std::string input =
      "{\"op\":\"job\",\"verb\":\"enumerate\",\"protocol\":\"MOESISplit\","
      "\"n\":4,\"equivalence\":\"strict\",\"spill_dir\":\"" +
      spill_dir + "\",\"id\":\"sp\"}\n";
  ASSERT_EQ(::write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  ::close(in_pipe[1]);
  server_thread.join();
  ::close(out_pipe[1]);
  reader.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  EXPECT_EQ(rc, 0);

  const auto responses = by_id(output);
  EXPECT_EQ(responses.at("sp").find("status")->string, "verified");
  // The spilled run and its byte pressure show up in {"op":"stats"}.
  const MetricsSnapshot stats = server.stats_snapshot();
  EXPECT_GT(stats.counters.at("serve.spill.spilled_keys"), 0u);
  EXPECT_GT(stats.counters.at("serve.spill.runs"), 0u);
  EXPECT_GT(stats.counters.at("serve.budget.bytes_charged"), 0u);
  EXPECT_GT(stats.gauges.at("serve.budget.peak_bytes"), 0.0);
  EXPECT_EQ(stats.counters.at("serve.jobs.budget_stopped"), 0u);
}

TEST(ServeServer, SpawnFailpointDegradesToInternalError) {
  Server::Options options;
  options.workers = 1;
  const ScopedFailpoints fp("serve.job_spawn=1");
  const std::string output = run_server_stdio(
      options,
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"MSI\","
      "\"id\":\"hit\"}\n"
      "{\"op\":\"job\",\"verb\":\"verify\",\"protocol\":\"MSI\","
      "\"id\":\"ok\"}\n");
  const auto responses = by_id(output);
  EXPECT_EQ(responses.at("hit").find("status")->string, "internal-error");
  EXPECT_NE(responses.at("hit").find("error")->string.find("serve.job_spawn"),
            std::string::npos);
  // One-shot failpoint: the very next job runs normally.
  EXPECT_EQ(responses.at("ok").find("status")->string, "verified");
}

}  // namespace
}  // namespace ccver
