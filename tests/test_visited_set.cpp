/// \file test_visited_set.cpp
/// ConcurrentKeySet: exact set semantics (serial and under deliberately
/// oversubscribed concurrent insert), exactly-once insert reporting for
/// racing duplicates, amortized growth, and the reserve fast path. The
/// concurrent cases double as the TSan stress target for the CAS
/// insert-if-absent and growth paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <unordered_set>
#include <vector>

#include "enumeration/visited_set.hpp"

namespace ccver {
namespace {

/// Distinct random packed keys of `n` cells (duplicates filtered so tests
/// can count exact insert successes).
std::vector<EnumKey> random_keys(std::size_t count, std::size_t n,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> cell_dist(0, 63);
  std::uniform_int_distribution<int> mdata_dist(0, 3);
  std::unordered_set<EnumKey, EnumKey::Hasher> seen;
  std::vector<EnumKey> keys;
  keys.reserve(count);
  std::array<std::uint8_t, kMaxCaches> cells{};
  while (keys.size() < count) {
    for (std::size_t i = 0; i < n; ++i) {
      cells[i] = static_cast<std::uint8_t>(cell_dist(rng));
    }
    const EnumKey key = EnumKey::pack(
        cells.data(), n, static_cast<std::uint8_t>(mdata_dist(rng)));
    if (seen.insert(key).second) keys.push_back(key);
  }
  return keys;
}

std::unordered_set<EnumKey, EnumKey::Hasher> contents(
    const ConcurrentKeySet& set) {
  std::unordered_set<EnumKey, EnumKey::Hasher> out;
  set.for_each([&](const EnumKey& key) { out.insert(key); });
  return out;
}

TEST(VisitedSet, SerialInsertMatchesReferenceSet) {
  ConcurrentKeySet set;
  std::unordered_set<EnumKey, EnumKey::Hasher> reference;
  // Insert with repeats: every key goes in three times, only the first
  // may report fresh.
  const std::vector<EnumKey> keys = random_keys(5'000, 8, 1);
  for (int round = 0; round < 3; ++round) {
    for (const EnumKey& key : keys) {
      const bool fresh = set.insert_serial(key);
      EXPECT_EQ(fresh, reference.insert(key).second);
    }
  }
  EXPECT_EQ(set.size(), reference.size());
  EXPECT_EQ(contents(set), reference);
}

TEST(VisitedSet, GrowthPreservesMembership) {
  // Start at the minimum capacity and push far past it: every key must
  // survive the rehashes and the table must have grown.
  ConcurrentKeySet set;
  const std::size_t initial_capacity = set.capacity();
  const std::vector<EnumKey> keys = random_keys(20'000, 32, 2);
  for (const EnumKey& key : keys) {
    ASSERT_TRUE(set.insert_serial(key));
  }
  EXPECT_GT(set.grow_count(), 0u);
  EXPECT_GT(set.capacity(), initial_capacity);
  EXPECT_EQ(set.size(), keys.size());
  const std::unordered_set<EnumKey, EnumKey::Hasher> reference(
      keys.begin(), keys.end());
  EXPECT_EQ(contents(set), reference);
}

TEST(VisitedSet, ReserveAvoidsGrowth) {
  ConcurrentKeySet set;
  const std::vector<EnumKey> keys = random_keys(20'000, 8, 3);
  set.reserve(keys.size());
  for (const EnumKey& key : keys) set.insert_serial(key);
  EXPECT_EQ(set.grow_count(), 0u);
  EXPECT_EQ(set.size(), keys.size());
}

/// Runs `threads` workers, each inserting its (overlapping) slice of
/// `keys` in batches through the scope/grow protocol the enumerator uses.
/// Returns the total number of inserts reported fresh.
std::size_t hammer(ConcurrentKeySet& set, const std::vector<EnumKey>& keys,
                   std::size_t threads, std::size_t batch,
                   std::uint64_t shuffle_seed) {
  std::atomic<std::size_t> fresh_total{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // Each worker walks all keys in its own order: maximal duplicate
      // contention, every key raced by every thread.
      std::vector<EnumKey> mine = keys;
      std::mt19937_64 rng(shuffle_seed + t);
      std::shuffle(mine.begin(), mine.end(), rng);
      std::size_t fresh = 0;
      for (std::size_t at = 0; at < mine.size(); at += batch) {
        const std::size_t end = std::min(mine.size(), at + batch);
        if (set.needs_grow()) set.maybe_grow();
        ConcurrentKeySet::InsertScope scope = set.insert_scope();
        for (std::size_t i = at; i < end; ++i) {
          if (scope.insert(mine[i])) ++fresh;
        }
      }
      fresh_total.fetch_add(fresh);
    });
  }
  for (std::thread& w : workers) w.join();
  return fresh_total.load();
}

TEST(VisitedSet, ConcurrentDuplicateInsertsReportFreshExactlyOnce) {
  // 8 threads on any machine (including a single core: oversubscription
  // widens the CAS/publish race windows) all inserting the same key set.
  ConcurrentKeySet set;
  const std::vector<EnumKey> keys = random_keys(10'000, 8, 4);
  const std::size_t fresh = hammer(set, keys, 8, 64, 99);
  EXPECT_EQ(fresh, keys.size());  // every key fresh exactly once, globally
  EXPECT_EQ(set.size(), keys.size());
  const std::unordered_set<EnumKey, EnumKey::Hasher> reference(
      keys.begin(), keys.end());
  EXPECT_EQ(contents(set), reference);
}

TEST(VisitedSet, ConcurrentInsertsSurviveForcedGrowth) {
  // Enough keys to force several doublings from the minimum capacity
  // while 8 threads are mid-flight; membership must still be exact.
  ConcurrentKeySet set;
  const std::vector<EnumKey> keys = random_keys(30'000, 32, 5);
  const std::size_t fresh = hammer(set, keys, 8, 32, 7);
  EXPECT_EQ(fresh, keys.size());
  EXPECT_EQ(set.size(), keys.size());
  EXPECT_GT(set.grow_count(), 0u);
  const std::unordered_set<EnumKey, EnumKey::Hasher> reference(
      keys.begin(), keys.end());
  EXPECT_EQ(contents(set), reference);
}

}  // namespace
}  // namespace ccver
