/// \file test_protocols.cpp
/// Structural checks on every protocol in the library: state sets,
/// characteristic kinds, invariant declarations, and per-protocol semantic
/// sanity checks derived from their published descriptions (Archibald &
/// Baer 1986 and the paper's Section 2.3/2.4).

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "fsm/concrete.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

// ------------------------------------------------------ library structure

TEST(Library, ArchibaldBaerSuiteHasTheSixProtocols) {
  const auto& suite = protocols::archibald_baer_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "WriteOnce");
  EXPECT_EQ(suite[1].name, "Synapse");
  EXPECT_EQ(suite[2].name, "Berkeley");
  EXPECT_EQ(suite[3].name, "Illinois");
  EXPECT_EQ(suite[4].name, "Firefly");
  EXPECT_EQ(suite[5].name, "Dragon");
}

TEST(Library, AllHasElevenProtocols) {
  EXPECT_EQ(protocols::all().size(), 11u);
}

TEST(Library, ByNameIsCaseInsensitive) {
  EXPECT_EQ(protocols::by_name("illinois").name(), "Illinois");
  EXPECT_EQ(protocols::by_name("MOESI").name(), "MOESI");
  EXPECT_THROW((void)protocols::by_name("nonesuch"), SpecError);
}

TEST(Library, FactoryNamesMatchProtocolNames) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    EXPECT_EQ(np.factory().name(), np.name);
  }
}

TEST(Library, EveryProtocolHasNotesOnEveryRule) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const Protocol p = np.factory();
    for (const Rule& r : p.rules()) {
      EXPECT_FALSE(r.note.empty())
          << p.name() << ": undocumented rule from " << p.state_name(r.from);
    }
  }
}

TEST(Library, StructuralExpectations) {
  struct Expect {
    const char* name;
    std::size_t states;
    CharacteristicKind kind;
    std::size_t exclusive;
    std::size_t unique;
    std::size_t owners;
  };
  const Expect expectations[] = {
      {"WriteOnce", 4, CharacteristicKind::Null, 2, 0, 1},
      {"Synapse", 3, CharacteristicKind::Null, 1, 0, 1},
      {"Berkeley", 4, CharacteristicKind::Null, 1, 1, 2},
      {"Illinois", 4, CharacteristicKind::SharingDetection, 2, 0, 1},
      {"Firefly", 4, CharacteristicKind::SharingDetection, 2, 0, 1},
      {"Dragon", 5, CharacteristicKind::SharingDetection, 2, 1, 2},
      {"MSI", 3, CharacteristicKind::Null, 1, 0, 1},
      {"MESI", 4, CharacteristicKind::SharingDetection, 2, 0, 1},
      {"MOESI", 5, CharacteristicKind::SharingDetection, 2, 1, 2},
      {"IllinoisSplit", 6, CharacteristicKind::SharingDetection, 2, 1, 1},
      {"MOESISplit", 8, CharacteristicKind::SharingDetection, 2, 2, 2},
  };
  for (const Expect& e : expectations) {
    const Protocol p = protocols::by_name(e.name);
    EXPECT_EQ(p.state_count(), e.states) << e.name;
    EXPECT_EQ(p.characteristic(), e.kind) << e.name;
    EXPECT_EQ(p.exclusivity().size(), e.exclusive) << e.name;
    EXPECT_EQ(p.unique_states().size(), e.unique) << e.name;
    EXPECT_EQ(p.owner_states().size(), e.owners) << e.name;
  }
}

// --------------------------------------- per-protocol semantic spot checks

/// Runs an access sequence and returns the final block.
ConcreteBlock run_sequence(
    const Protocol& p, std::size_t n,
    std::initializer_list<std::pair<std::size_t, OpId>> sequence) {
  ConcreteBlock b = ConcreteBlock::initial(p, n);
  for (const auto& [cpu, op] : sequence) {
    (void)apply_op(p, b, cpu, op);
  }
  return b;
}

TEST(WriteOnceSemantics, FirstWriteGoesThroughSecondStaysLocal) {
  const Protocol p = protocols::write_once();
  ConcreteBlock b = run_sequence(p, 2, {{0, StdOps::Read}, {0, StdOps::Write}});
  // Write-once: the first write updated memory (Reserved, memory fresh).
  EXPECT_EQ(p.state_name(b.states[0]), "Reserved");
  EXPECT_EQ(mdata_of(b), MData::Fresh);
  (void)apply_op(p, b, 0, StdOps::Write);
  EXPECT_EQ(p.state_name(b.states[0]), "Dirty");
  EXPECT_EQ(mdata_of(b), MData::Obsolete);
}

TEST(SynapseSemantics, DirtyHolderInvalidatesItselfOnRemoteRead) {
  const Protocol p = protocols::synapse();
  ConcreteBlock b =
      run_sequence(p, 2, {{0, StdOps::Write}, {1, StdOps::Read}});
  // Synapse: no cache-to-cache transfer; the dirty holder flushed and
  // dropped its copy, memory supplied the requester.
  EXPECT_EQ(p.state_name(b.states[0]), "Invalid");
  EXPECT_EQ(p.state_name(b.states[1]), "Valid");
  EXPECT_EQ(mdata_of(b), MData::Fresh);
}

TEST(BerkeleySemantics, OwnerSuppliesWithoutUpdatingMemory) {
  const Protocol p = protocols::berkeley();
  ConcreteBlock b =
      run_sequence(p, 2, {{0, StdOps::Write}, {1, StdOps::Read}});
  EXPECT_EQ(p.state_name(b.states[0]), "SharedDirty");
  EXPECT_EQ(p.state_name(b.states[1]), "Valid");
  EXPECT_EQ(mdata_of(b), MData::Obsolete);  // the Berkeley signature
  EXPECT_EQ(cdata_of(p, b, 1), CData::Fresh);
}

TEST(IllinoisSemantics, DirtySupplierUpdatesMemory) {
  const Protocol p = protocols::illinois();
  const ConcreteBlock b =
      run_sequence(p, 2, {{0, StdOps::Write}, {1, StdOps::Read}});
  EXPECT_EQ(p.state_name(b.states[0]), "Shared");
  EXPECT_EQ(p.state_name(b.states[1]), "Shared");
  EXPECT_EQ(mdata_of(b), MData::Fresh);  // unlike Berkeley
}

TEST(FireflySemantics, SharedWriteUpdatesSharersAndMemory) {
  const Protocol p = protocols::firefly();
  ConcreteBlock b = run_sequence(
      p, 3, {{0, StdOps::Read}, {1, StdOps::Read}, {0, StdOps::Write}});
  // Firefly never invalidates: both copies stay Shared and fresh, memory
  // receives the write-through.
  EXPECT_EQ(p.state_name(b.states[0]), "Shared");
  EXPECT_EQ(p.state_name(b.states[1]), "Shared");
  EXPECT_EQ(cdata_of(p, b, 1), CData::Fresh);
  EXPECT_EQ(mdata_of(b), MData::Fresh);
}

TEST(FireflySemantics, LastSharerWriteBecomesValidExclusive) {
  const Protocol p = protocols::firefly();
  ConcreteBlock b = run_sequence(
      p, 2, {{0, StdOps::Read}, {1, StdOps::Read}, {1, StdOps::Replace},
             {0, StdOps::Write}});
  EXPECT_EQ(p.state_name(b.states[0]), "ValidExclusive");
  EXPECT_EQ(mdata_of(b), MData::Fresh);
}

TEST(DragonSemantics, SharedWriteMovesOwnershipWithoutMemoryUpdate) {
  const Protocol p = protocols::dragon();
  ConcreteBlock b = run_sequence(
      p, 3, {{0, StdOps::Write}, {1, StdOps::Read}, {1, StdOps::Write}});
  // Cache 0 wrote (Dirty), cache 1 read (0 -> SharedModified owner,
  // 1 SharedClean), then cache 1 wrote: ownership moves to 1.
  EXPECT_EQ(p.state_name(b.states[1]), "SharedModified");
  EXPECT_EQ(p.state_name(b.states[0]), "SharedClean");
  EXPECT_EQ(cdata_of(p, b, 0), CData::Fresh);  // broadcast updated it
  EXPECT_EQ(mdata_of(b), MData::Obsolete);     // memory not updated
}

TEST(MoesiSemantics, ModifiedBecomesOwnedOnRemoteRead) {
  const Protocol p = protocols::moesi();
  const ConcreteBlock b =
      run_sequence(p, 2, {{0, StdOps::Write}, {1, StdOps::Read}});
  EXPECT_EQ(p.state_name(b.states[0]), "Owned");
  EXPECT_EQ(p.state_name(b.states[1]), "Shared");
  EXPECT_EQ(mdata_of(b), MData::Obsolete);  // owner holds the only fresh copy
}

TEST(MoesiSemantics, OwnerReplacementWritesBack) {
  const Protocol p = protocols::moesi();
  const ConcreteBlock b = run_sequence(
      p, 2, {{0, StdOps::Write}, {1, StdOps::Read}, {0, StdOps::Replace}});
  EXPECT_EQ(mdata_of(b), MData::Fresh);
  EXPECT_EQ(p.state_name(b.states[1]), "Shared");
  EXPECT_EQ(cdata_of(p, b, 1), CData::Fresh);
}

TEST(MsiSemantics, EveryFillIsShared) {
  const Protocol p = protocols::msi();
  const ConcreteBlock b = run_sequence(p, 2, {{0, StdOps::Read}});
  EXPECT_EQ(p.state_name(b.states[0]), "Shared");  // no E state in MSI
}

// --------------------------------------------- cross-protocol properties

TEST(Library, EveryProtocolVerifies) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const Protocol p = np.factory();
    const VerificationReport report = Verifier(p).verify();
    EXPECT_TRUE(report.ok) << report.summary(p);
  }
}

TEST(Library, EssentialStatesStayTiny) {
  // The paper's headline: a handful of essential states per protocol --
  // even the split-transaction protocols stay within a small multiple of
  // |Q| (MOESISplit: 27 essential states for |Q| = 8).
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const Protocol p = np.factory();
    const VerificationReport report = Verifier(p).verify();
    EXPECT_LE(report.essential.size(), 4 * p.state_count()) << p.name();
  }
}

TEST(Library, InitialStateIsAlwaysEssential) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const Protocol p = np.factory();
    const VerificationReport report = Verifier(p).verify();
    const CompositeState initial = CompositeState::initial(p);
    const bool found =
        std::find(report.essential.begin(), report.essential.end(),
                  initial) != report.essential.end();
    EXPECT_TRUE(found) << p.name();
  }
}

TEST(Library, DiagramIsStronglyConnected) {
  // Every protocol here can always drain back to (Invalid+) via
  // replacements and refill, so the global diagram over essential states
  // must be strongly connected.
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const Protocol p = np.factory();
    const VerificationReport report = Verifier(p).verify();
    ASSERT_TRUE(report.ok);
    const auto& g = report.graph;
    const std::size_t n = g.nodes().size();
    for (std::size_t start = 0; start < n; ++start) {
      std::vector<bool> seen(n, false);
      std::vector<std::size_t> stack{start};
      seen[start] = true;
      while (!stack.empty()) {
        const std::size_t cur = stack.back();
        stack.pop_back();
        for (const ReachabilityGraph::Edge& e : g.edges()) {
          if (e.from == cur && !seen[e.to]) {
            seen[e.to] = true;
            stack.push_back(e.to);
          }
        }
      }
      for (std::size_t t = 0; t < n; ++t) {
        EXPECT_TRUE(seen[t]) << p.name() << ": s" << start
                             << " cannot reach s" << t;
      }
    }
  }
}

}  // namespace
}  // namespace ccver
