# Fixture: Pending stalls every processor operation and no rule leaves it
# on the originator's own initiative -> stuck-transient. (A remote write
# aborts Pending via the invalidation, which keeps the FSM connected but
# is not self-initiated progress.)
protocol StuckTransient {
  characteristic null

  invalid state Invalid
  state Pending
  state Dirty exclusive owner

  rule Invalid R -> Pending {
    load memory
  }
  rule Pending R -> Pending {
    stall
  }
  rule Pending W -> Pending {
    stall
  }
  rule Pending Z -> Pending {
    stall
  }
  rule Dirty R -> Dirty {}
  rule Invalid W -> Dirty {
    invalidate others
    load memory
    store
  }
  rule Dirty W -> Dirty {
    store
  }
  rule Dirty Z -> Invalid {
    writeback self
  }
}
