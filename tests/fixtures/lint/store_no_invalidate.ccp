# Fixture: the write hit on Shared upgrades without invalidating the other
# sharers -> store-no-invalidate.
protocol StoreNoInvalidate {
  characteristic null

  invalid state Invalid
  state Shared
  state Modified exclusive owner

  rule Invalid R -> Shared {
    observe Modified -> Shared
    writeback from Modified
    load prefer Modified Shared
  }
  rule Shared R -> Shared {}
  rule Modified R -> Modified {}
  rule Invalid W -> Modified {
    invalidate others
    load prefer Modified Shared
    store
  }
  rule Shared W -> Modified {
    store
  }
  rule Modified W -> Modified {
    store
  }
  rule Shared Z -> Invalid {}
  rule Modified Z -> Invalid {
    writeback self
  }
}
