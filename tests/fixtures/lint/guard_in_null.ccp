# Fixture: sharing guards on the write-hit rules, but the characteristic
# function is null -> guard-in-null (twice).
protocol GuardInNull {
  characteristic null

  invalid state Invalid
  state Shared
  state Modified exclusive owner

  rule Invalid R -> Shared {
    observe Modified -> Shared
    writeback from Modified
    load prefer Modified Shared
  }
  rule Shared R -> Shared {}
  rule Modified R -> Modified {}
  rule Invalid W -> Modified {
    invalidate others
    load prefer Modified Shared
    store
  }
  rule Shared W when shared -> Modified {
    invalidate others
    store
  }
  rule Shared W when unshared -> Modified {
    invalidate others
    store
  }
  rule Modified W -> Modified {
    store
  }
  rule Shared Z -> Invalid {}
  rule Modified Z -> Invalid {
    writeback self
  }
}
