# Fixture: readers pile onto a pending line. A read miss while the line
# is busy *joins* the pending set instead of being NACKed, but the fill
# acknowledgment is only granted when the line is unshared -- so in the
# reachable state (Pending+, Invalid*) new readers can keep joining
# forever while no Ack is ever enabled: a livelock cycle. It is not a
# deadlock because a write miss invalidates the pending set and the solo
# path (Pending, Invalid*) completes normally, so a completing
# continuation always stays reachable; the system just never has to take
# it.
protocol LivelockCycle {
  characteristic sharing

  op Ack
  invalid state Invalid
  state Pending
  state Exclusive exclusive
  state Dirty exclusive owner

  rule Invalid R when unshared -> Pending {
    load memory
    note "read miss on an idle line: data latched, fill pending"
  }
  rule Invalid R when shared -> Pending {
    load memory
    note "read miss while the line is busy: joins the pending set"
  }
  rule Invalid W when unshared -> Dirty {
    load memory
    store
    note "write miss on an idle line: atomic fill and write"
  }
  rule Invalid W when shared -> Dirty {
    invalidate others
    load memory
    store
    note "write miss while the line is busy: invalidates the pending set"
  }
  rule Pending Ack when unshared -> Exclusive {
    note "fill acknowledged once the line is unshared"
  }
  rule Pending R -> Pending {
    stall
  }
  rule Pending W -> Pending {
    stall
  }
  rule Pending Z -> Pending {
    stall
  }
  rule Exclusive R -> Exclusive {
    note "read hit"
  }
  rule Exclusive W -> Dirty {
    invalidate others
    store
    note "write hit: upgrade"
  }
  rule Exclusive Z -> Invalid {
    note "replace clean copy"
  }
  rule Dirty R -> Dirty {
    note "read hit"
  }
  rule Dirty W -> Dirty {
    store
    note "write hit"
  }
  rule Dirty Z -> Invalid {
    writeback self
    note "replace dirty copy: write back to memory"
  }
}
