# Fixture: replacing Modified drops the only fresh copy without a
# write-back -> owner-evict-no-writeback.
protocol OwnerEvict {
  characteristic null

  invalid state Invalid
  state Shared
  state Modified exclusive owner

  rule Invalid R -> Shared {
    observe Modified -> Shared
    writeback from Modified
    load prefer Modified Shared
  }
  rule Shared R -> Shared {}
  rule Modified R -> Modified {}
  rule Invalid W -> Modified {
    invalidate others
    load prefer Modified Shared
    store
  }
  rule Shared W -> Modified {
    invalidate others
    store
  }
  rule Modified W -> Modified {
    store
  }
  rule Shared Z -> Invalid {}
  rule Modified Z -> Invalid {}
}
