# Fixture: references an undeclared state -> parse-error even under
# lenient parsing.
protocol ParseError {
  characteristic null

  invalid state Invalid
  state Valid

  rule Nowhere R -> Valid {}
}
