# Fixture: the read-miss fill prefers Shared but omits the owner state
# Modified, whose copy may be the only fresh one
# -> load-prefer-missing-owner.
protocol LoadPreferMissingOwner {
  characteristic null

  invalid state Invalid
  state Shared
  state Modified exclusive owner

  rule Invalid R -> Shared {
    observe Modified -> Shared
    writeback from Modified
    load prefer Shared
  }
  rule Shared R -> Shared {}
  rule Modified R -> Modified {}
  rule Invalid W -> Modified {
    invalidate others
    load prefer Modified Shared
    store
  }
  rule Shared W -> Modified {
    invalidate others
    store
  }
  rule Modified W -> Modified {
    store
  }
  rule Shared Z -> Invalid {}
  rule Modified Z -> Invalid {
    writeback self
  }
}
