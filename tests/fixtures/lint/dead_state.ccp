# Fixture: no transition ever enters Trap, so no reachable global state
# populates it -> dead-state. (Lenient parsing admits the broken per-cache
# connectivity; a strict build would reject this spec outright.)
protocol DeadState {
  characteristic null

  invalid state Invalid
  state Shared
  state Modified exclusive owner
  state Trap

  rule Invalid R -> Shared {
    observe Modified -> Shared
    writeback from Modified
    load prefer Modified Shared
  }
  rule Shared R -> Shared {}
  rule Modified R -> Modified {}
  rule Trap R -> Trap {}
  rule Invalid W -> Modified {
    invalidate others
    load prefer Modified Shared
    store
  }
  rule Shared W -> Modified {
    invalidate others
    store
  }
  rule Modified W -> Modified {
    store
  }
  rule Trap W -> Trap {
    invalidate others
    store
  }
  rule Shared Z -> Invalid {}
  rule Modified Z -> Invalid {
    writeback self
  }
  rule Trap Z -> Invalid {}
}
