# Fixture: a completion that assumes a supplier. The fill acknowledgment
# for Pending is guarded `when shared` (the grant expects another cache
# to supply the data), but a read miss while the line is busy is NACKed,
# so Pending only ever exists alone -- the shared context never arises
# and the Ack rule fires in no reachable global state ->
# unreachable-completion. The pending copy is still aborted by a remote
# write miss, which keeps every state live and the rest of the report
# clean (the rule's dead-rule report is subsumed).
protocol UnreachableCompletion {
  characteristic sharing

  op Ack
  invalid state Invalid
  state Pending
  state Dirty exclusive owner

  rule Invalid R when unshared -> Pending {
    load memory
    note "read miss on an idle line: data latched, fill pending"
  }
  rule Invalid R when shared -> Invalid {
    stall
    note "read miss while the line is busy: NACKed, retry"
  }
  rule Invalid W when unshared -> Dirty {
    load memory
    store
    note "write miss on an idle line: atomic fill and write"
  }
  rule Invalid W when shared -> Dirty {
    invalidate others
    load memory
    store
    note "write miss while the line is busy: invalidates the pending copy"
  }
  rule Pending Ack when shared -> Dirty {
    note "fill acknowledged by a supplying cache -- which never exists"
  }
  rule Pending R -> Pending {
    stall
  }
  rule Pending W -> Pending {
    stall
  }
  rule Pending Z -> Pending {
    stall
  }
  rule Dirty R -> Dirty {
    note "read hit"
  }
  rule Dirty W -> Dirty {
    store
    note "write hit"
  }
  rule Dirty Z -> Invalid {
    writeback self
    note "replace dirty copy: write back to memory"
  }
}
