# Fixture: a grant-based protocol that paints itself into a corner. Both
# transients complete only on an *unshared* grant, a read miss while the
# line is busy is NACKed (stall), but a write miss while the line is busy
# joins as another waiter without invalidating anyone -- and a granted
# line is pinned (never evicted, never invalidated). Once two waiters
# coexist, e.g. the reachable state (ReadWait, WriteWait, Invalid*), the
# line never becomes unshared again and no continuation reaches either
# grant -> global-deadlock for both transients. Each grant does fire on
# the solo path, so stuck-transient and unreachable-completion stay
# silent; and with the pinned holder nothing ever reopens a completing
# path, so no livelock cycle exists either -- the starvation is certain.
protocol GlobalDeadlock {
  characteristic sharing

  op GntR
  op GntW write
  invalid state Invalid
  state ReadWait
  state WriteWait unique
  state Held exclusive

  rule Invalid R when unshared -> ReadWait {
    load memory
    note "read miss on an idle line: data latched, grant pending"
  }
  rule Invalid R when shared -> Invalid {
    stall
    note "read miss while the line is busy: NACKed, retry"
  }
  rule Invalid W when unshared -> WriteWait {
    load memory
    defer store
    note "write miss on an idle line: data latched, grant pending"
  }
  rule Invalid W when shared -> WriteWait {
    load memory
    defer store
    note "write miss while the line is busy: joins as another waiter"
  }
  rule ReadWait GntR when unshared -> Held {
    note "read grant arrives once the line is unshared"
  }
  rule WriteWait GntW when unshared -> Held {
    store
    note "write grant arrives once the line is unshared"
  }
  rule ReadWait R -> ReadWait {
    stall
  }
  rule ReadWait W -> ReadWait {
    stall
  }
  rule ReadWait Z -> ReadWait {
    stall
  }
  rule WriteWait R -> WriteWait {
    stall
  }
  rule WriteWait W -> WriteWait {
    stall
  }
  rule WriteWait Z -> WriteWait {
    stall
  }
  rule Held R -> Held {
    note "read hit"
  }
  rule Held W -> Held {
    store
    note "write hit"
  }
  rule Held Z -> Held {
    note "replacement deferred: a granted line stays pinned"
  }
}
