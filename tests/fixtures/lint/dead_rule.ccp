# Fixture: read misses steal the block (observe Exclusive -> Invalid), so
# at most one copy ever exists and the sharing-detection function is always
# false from Exclusive's perspective: the guarded Hop rule can never fire
# -> dead-rule.
protocol DeadRule {
  characteristic sharing

  op Hop

  invalid state Invalid
  state Exclusive exclusive

  rule Invalid R -> Exclusive {
    observe Exclusive -> Invalid
    load memory
  }
  rule Exclusive R -> Exclusive {}
  rule Invalid W -> Exclusive {
    invalidate others
    load memory
    store
  }
  rule Exclusive W -> Exclusive {
    invalidate others
    store
  }
  rule Exclusive Z -> Invalid {}
  rule Exclusive Hop when shared -> Invalid {}
  rule Exclusive Hop when unshared -> Exclusive {}
}
