/// \file test_key_compat.cpp
/// Representation-compatibility guarantees for the packed `EnumKey`:
///
///  * the checkpoint text format is frozen -- a v1 checkpoint written by
///    the pre-packing build (fixture under tests/fixtures/checkpoints/)
///    loads, resumes to the exact uninterrupted result, and re-saves
///    byte-identically;
///  * pack/unpack against the legacy `CellKey` encoding is a lossless
///    round trip for every shipped spec at every cache count, and the
///    packed comparator/equality agree with the cell-wise reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "enumeration/checkpoint.hpp"
#include "enumeration/enumerator.hpp"
#include "protocols/protocols.hpp"
#include "spec/loader.hpp"
#include "util/error.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

const fs::path kFixture = fs::path(CCVER_SOURCE_DIR) / "tests" / "fixtures" /
                          "checkpoints" / "v1_prepack_moesisplit_n4.ckpt";

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

// -- frozen v1 text format ----------------------------------------------

TEST(CheckpointV1Compat, PrePackingFixtureLoads) {
  const EnumCheckpoint cp = load_checkpoint(kFixture);
  EXPECT_EQ(cp.protocol, "MOESISplit");
  EXPECT_EQ(cp.n_caches, 4u);
  EXPECT_EQ(cp.equivalence, Equivalence::Counting);
  EXPECT_TRUE(cp.exploit_symmetry);
  EXPECT_EQ(cp.visited.size(), 40u);
  EXPECT_TRUE(cp.errors.empty());
  // The sections were written sorted by the canonical key order and must
  // parse back in that order under the packed comparator.
  EXPECT_TRUE(std::is_sorted(cp.visited.begin(), cp.visited.end(), key_less));
  EXPECT_TRUE(
      std::is_sorted(cp.frontier.begin(), cp.frontier.end(), key_less));
}

TEST(CheckpointV1Compat, PrePackingFixtureResavesByteIdentically) {
  const EnumCheckpoint cp = load_checkpoint(kFixture);
  const fs::path dir = fs::temp_directory_path() / "ccver_v1_compat_resave";
  fs::create_directories(dir);
  const fs::path copy = dir / "resave.ckpt";
  save_checkpoint(cp, copy);
  EXPECT_EQ(slurp(copy), slurp(kFixture));
  fs::remove_all(dir);
}

TEST(CheckpointV1Compat, PrePackingFixtureResumesToUninterruptedResult) {
  const Protocol p = protocols::moesi_split();
  const EnumCheckpoint cp = load_checkpoint(kFixture);
  ASSERT_EQ(cp.fingerprint, protocol_fingerprint(p))
      << "shipped MOESISplit no longer matches the fixture; regenerate the "
         "fixture only if the protocol intentionally changed";

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    Enumerator::Options base;
    base.n_caches = 4;
    base.threads = threads;
    base.keep_states = true;
    const EnumerationResult full = Enumerator(p, base).run();

    Enumerator::Options resumed = base;
    resumed.resume = &cp;
    const EnumerationResult after = Enumerator(p, resumed).run();
    EXPECT_EQ(after.outcome, Outcome::Complete);
    EXPECT_EQ(after.states, full.states);
    EXPECT_EQ(after.visits, full.visits);
    EXPECT_EQ(after.levels, full.levels);
    EXPECT_EQ(after.expansions, full.expansions);
    EXPECT_EQ(after.symmetry_skips, full.symmetry_skips);
    EXPECT_EQ(after.reachable, full.reachable);
  }
}

// -- packed <-> legacy cell encoding ------------------------------------

/// Reference comparator on the legacy encoding: cell count, then cells
/// lexicographically, then mdata. `key_less` must agree after packing.
bool cell_key_less(const CellKey& a, const CellKey& b) {
  if (a.cells.size() != b.cells.size()) {
    return a.cells.size() < b.cells.size();
  }
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i] != b.cells[i]) return a.cells[i] < b.cells[i];
  }
  return a.mdata < b.mdata;
}

/// A random key that is *valid for `p`*: per cell, a protocol state with a
/// consistent freshness class (valid state <-> holds data).
CellKey random_cell_key(const Protocol& p, std::size_t n,
                        std::mt19937_64& rng) {
  CellKey key;
  std::uniform_int_distribution<std::size_t> state_dist(
      0, p.state_count() - 1);
  std::uniform_int_distribution<int> fresh_dist(0, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = static_cast<StateId>(state_dist(rng));
    const CData c = !p.is_valid_state(s)    ? CData::NoData
                    : fresh_dist(rng) != 0 ? CData::Fresh
                                           : CData::Obsolete;
    key.cells.push_back(
        static_cast<std::uint8_t>((s << 2) | static_cast<std::uint8_t>(c)));
  }
  key.mdata = static_cast<std::uint8_t>(fresh_dist(rng) != 0
                                            ? MData::Fresh
                                            : MData::Obsolete);
  return key;
}

std::vector<fs::path> shipped_specs() {
  std::vector<fs::path> specs;
  for (const fs::directory_entry& entry : fs::directory_iterator(
           fs::path(CCVER_SOURCE_DIR) / "specs")) {
    if (entry.path().extension() == ".ccp") specs.push_back(entry.path());
  }
  std::sort(specs.begin(), specs.end());
  EXPECT_FALSE(specs.empty());
  return specs;
}

TEST(PackedKeyRoundTrip, EverySpecEveryCacheCount) {
  std::mt19937_64 rng(20260807);
  for (const fs::path& spec : shipped_specs()) {
    const Protocol p = load_protocol_file(spec.string());
    for (std::size_t n = 1; n <= kMaxCaches; ++n) {
      std::vector<CellKey> batch;
      for (int trial = 0; trial < 20; ++trial) {
        batch.push_back(random_cell_key(p, n, rng));
      }
      for (const CellKey& cell_key : batch) {
        const EnumKey packed = pack_key(cell_key);
        // Lossless layout change: size, every cell, mdata, and the exact
        // inverse through unpack.
        ASSERT_EQ(packed.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(packed.cell(i), cell_key.cells[i])
              << spec.filename() << " n=" << n << " cell " << i;
        }
        ASSERT_EQ(packed.mdata(), cell_key.mdata);
        ASSERT_EQ(unpack_key(packed), cell_key);
        // Reify/project closes the loop through the concrete
        // representation (strict: cell order is preserved).
        ASSERT_EQ(project(p, reify(p, packed), Equivalence::Strict), packed)
            << spec.filename() << " n=" << n;
      }
      // Packed equality and order agree with the cell-wise reference.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        for (std::size_t j = 0; j < batch.size(); ++j) {
          const EnumKey a = pack_key(batch[i]);
          const EnumKey b = pack_key(batch[j]);
          ASSERT_EQ(a == b, batch[i] == batch[j]);
          ASSERT_EQ(key_less(a, b), cell_key_less(batch[i], batch[j]))
              << spec.filename() << " n=" << n;
          if (a == b) ASSERT_EQ(a.hash(), b.hash());
        }
      }
    }
  }
}

TEST(PackedKeyRoundTrip, OrderAgreesAcrossCacheCounts) {
  // Keys of different sizes order by size first, in both encodings.
  std::mt19937_64 rng(7);
  const Protocol p = protocols::moesi();
  std::vector<CellKey> keys;
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{9}, std::size_t{10}, std::size_t{11},
        std::size_t{29}, std::size_t{30}, std::size_t{31}, kMaxCaches}) {
    for (int trial = 0; trial < 8; ++trial) {
      keys.push_back(random_cell_key(p, n, rng));
    }
  }
  for (const CellKey& a : keys) {
    for (const CellKey& b : keys) {
      ASSERT_EQ(key_less(pack_key(a), pack_key(b)), cell_key_less(a, b));
    }
  }
}

TEST(PackedKeyRoundTrip, WordBoundaryCellsSurvive) {
  // Cells 9/10 (words[0] -> words[1]), 29/30 (words[2] -> words[3]) and 31
  // (the last slot) are the layout's edge cases: all-maximal cells at the
  // boundary sizes must round-trip exactly.
  for (const std::size_t n :
       {std::size_t{10}, std::size_t{11}, std::size_t{30}, std::size_t{31},
        kMaxCaches}) {
    std::array<std::uint8_t, kMaxCaches> cells{};
    for (std::size_t i = 0; i < n; ++i) {
      cells[i] = static_cast<std::uint8_t>(i % 2 == 0 ? 0x3f : i);
    }
    const EnumKey key = EnumKey::pack(cells.data(), n, 3);
    ASSERT_EQ(key.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(key.cell(i), cells[i]) << "n=" << n << " cell " << i;
    }
    ASSERT_EQ(key.mdata(), 3);
  }
}

}  // namespace
}  // namespace ccver
