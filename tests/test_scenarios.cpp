/// \file test_scenarios.cpp
/// Targeted tests for the data-scenario branching inside symbolic
/// successor generation: supplier classes with `*` repetition split into
/// present/absent branches (an exact family split), and WriteBackFrom
/// responders whose presence is uncertain branch the memory attribute.
/// These paths rarely trigger from the canonical initial state of correct
/// protocols, so they are exercised here on hand-built composite states.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/expansion.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

std::vector<CompositeState> successors_via(const Protocol& p,
                                           const CompositeState& s,
                                           OpId op, StateId origin) {
  std::vector<CompositeState> out;
  for (const Successor& succ : successors(p, s)) {
    if (succ.label.op == op && succ.label.origin_state == origin) {
      out.push_back(succ.state);
    }
  }
  return out;
}

TEST(Scenarios, StarSupplierClassesBranchOnPresence) {
  // Dragon state with two flexible valid classes: neither can be
  // sharpened (each could hold the copies). A read miss walks the supply
  // preference [Sm, D, Sc, E]; both flexible classes split the scenario.
  const Protocol p = protocols::dragon();
  const CompositeState s = CompositeState::parse(
      p, "(SharedClean*, SharedModified*, Inv+) level=many");
  const auto fills =
      successors_via(p, s, StdOps::Read, p.invalid_state());
  // At least: latched from Sm (present-branch), from Sc (Sm absent), and
  // the all-absent memory fallback.
  EXPECT_GE(fills.size(), 3u);

  // Present-branches must sharpen the assumed supplier to `+` or better.
  const StateId sm = *p.find_state("SharedModified");
  const bool sm_definite_branch =
      std::any_of(fills.begin(), fills.end(), [&](const CompositeState& f) {
        return rep_definite(f.rep_of(sm, CData::Fresh));
      });
  EXPECT_TRUE(sm_definite_branch);

  // Absent-branches drop the class entirely.
  const bool sm_absent_branch =
      std::any_of(fills.begin(), fills.end(), [&](const CompositeState& f) {
        return f.rep_of_state(sm) == Rep::Zero;
      });
  EXPECT_TRUE(sm_absent_branch);
}

TEST(Scenarios, WriteBackFromBranchesTheMemoryAttribute) {
  // Illinois state where the dirty holder's presence is uncertain and
  // memory is stale: the read-miss write-back either refreshes memory
  // (holder present) or leaves it stale (holder absent, supplied by a
  // Shared copy).
  const Protocol p = protocols::illinois();
  const CompositeState s = CompositeState::parse(
      p, "(Dirty*, Shared+, Inv+) mem=obsolete level=many");
  const auto fills =
      successors_via(p, s, StdOps::Read, p.invalid_state());
  std::set<MData> mdatas;
  for (const CompositeState& f : fills) mdatas.insert(f.mdata());
  EXPECT_TRUE(mdatas.contains(MData::Fresh));     // holder flushed
  EXPECT_TRUE(mdatas.contains(MData::Obsolete));  // holder absent
}

TEST(Scenarios, DefiniteSupplierBlocksFallback) {
  // With a definitely-present Dirty holder there is exactly one fill
  // scenario: no memory fallback, no presence branches.
  const Protocol p = protocols::illinois();
  const CompositeState s =
      CompositeState::parse(p, "(Dirty, Inv*) mem=obsolete");
  const auto fills =
      successors_via(p, s, StdOps::Read, p.invalid_state());
  ASSERT_EQ(fills.size(), 1u);
  EXPECT_EQ(fills[0].mdata(), MData::Fresh);  // the holder flushed
}

TEST(Scenarios, AllSuccessorsAreCanonical) {
  // Every generated successor must be a fixpoint of canonicalization --
  // checked over all successors of all hand-built states above plus the
  // essential states of the most branch-heavy protocol.
  const Protocol p = protocols::moesi_split();
  const ExpansionResult r = SymbolicExpander(p).run();
  for (const CompositeState& s : r.essential) {
    for (const Successor& succ : successors(p, s)) {
      const auto again = CompositeState::canonicalize(
          p, succ.state.classes(), succ.state.mdata(), succ.state.level());
      ASSERT_EQ(again.size(), 1u) << succ.state.to_string(p);
      EXPECT_EQ(again[0], succ.state) << succ.state.to_string(p);
    }
  }
}

TEST(Scenarios, LevelBranchesAreMutuallyExclusiveFamilies) {
  // The replacement from (Shared+, Inv*) produces the One/Many branch
  // pair; no concrete configuration may satisfy both.
  const Protocol p = protocols::illinois();
  const CompositeState s =
      CompositeState::parse(p, "(Shared+, Inv*) level=many");
  const auto drops =
      successors_via(p, s, StdOps::Replace, *p.find_state("Shared"));
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_NE(drops[0].level(), drops[1].level());
}

}  // namespace
}  // namespace ccver
