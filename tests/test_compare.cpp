/// \file test_compare.cpp
/// Behavioral comparison of protocols (diagram isomorphism) and the
/// pruning-mode ablation: the properties behind bench_e10 and bench_e11.

#include <gtest/gtest.h>

#include "core/compare.hpp"
#include "core/verifier.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

// ------------------------------------------------------------- comparison

TEST(Compare, IllinoisIsIsomorphicToMesi) {
  const ProtocolComparison cmp =
      compare_protocols(protocols::illinois(), protocols::mesi());
  ASSERT_TRUE(cmp.isomorphic) << cmp.detail;
  // The renaming must be the textbook one.
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"ValidExclusive", "Exclusive"},
      {"Shared", "Shared"},
      {"Dirty", "Modified"},
  };
  EXPECT_EQ(cmp.state_mapping, expected);
}

TEST(Compare, IsomorphismIsSymmetric) {
  const ProtocolComparison ab =
      compare_protocols(protocols::illinois(), protocols::mesi());
  const ProtocolComparison ba =
      compare_protocols(protocols::mesi(), protocols::illinois());
  EXPECT_TRUE(ab.isomorphic);
  EXPECT_TRUE(ba.isomorphic);
}

TEST(Compare, EveryProtocolIsIsomorphicToItself) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const ProtocolComparison cmp =
        compare_protocols(np.factory(), np.factory());
    EXPECT_TRUE(cmp.isomorphic) << np.name << ": " << cmp.detail;
  }
}

TEST(Compare, SynapseAndMsiDifferDespiteEqualStateCounts) {
  const ProtocolComparison cmp =
      compare_protocols(protocols::synapse(), protocols::msi());
  EXPECT_FALSE(cmp.isomorphic);
  EXPECT_FALSE(cmp.detail.empty());
}

TEST(Compare, DifferentStateCountsShortCircuit) {
  const ProtocolComparison cmp =
      compare_protocols(protocols::msi(), protocols::mesi());
  EXPECT_FALSE(cmp.isomorphic);
  EXPECT_NE(cmp.detail.find("state counts differ"), std::string::npos);
}

TEST(Compare, IllinoisAndFireflyShareStatesButNotBehavior) {
  // Same state names, same |Q|, same characteristic -- but write-broadcast
  // vs write-invalidate produce different diagrams.
  const ProtocolComparison cmp =
      compare_protocols(protocols::illinois(), protocols::firefly());
  EXPECT_FALSE(cmp.isomorphic);
}

TEST(Compare, MoesiAndDragonBothHaveFiveStatesButDiffer) {
  const ProtocolComparison cmp =
      compare_protocols(protocols::moesi(), protocols::dragon());
  EXPECT_FALSE(cmp.isomorphic);
}

TEST(Compare, ErroneousProtocolsAreRejected) {
  EXPECT_THROW((void)compare_protocols(
                   protocols::illinois(),
                   protocols::illinois_no_invalidate_on_write_hit()),
               ModelError);
}

// ------------------------------------------------------------------- diff

TEST(Diff, IdenticalProtocolsHaveNoDiff) {
  const ProtocolDiff d =
      diff_protocols(protocols::illinois(), protocols::illinois());
  EXPECT_TRUE(d.identical());
}

TEST(Diff, BaseVsBuggyVariantShowsTheDefectStates) {
  // The no-invalidate bug adds states with stale Shared copies; the diff
  // must surface them even though the variant does not verify.
  const ProtocolDiff d =
      diff_protocols(protocols::illinois(),
                     protocols::illinois_no_invalidate_on_write_hit());
  EXPECT_FALSE(d.identical());
  ASSERT_FALSE(d.states_only_in_b.empty());
  bool stale_state_shown = false;
  for (const std::string& s : d.states_only_in_b) {
    stale_state_shown =
        stale_state_shown || s.find("obsolete") != std::string::npos;
  }
  EXPECT_TRUE(stale_state_shown);
}

TEST(Diff, PerformanceMutantShowsMissingExclusiveFills) {
  // Filling Shared instead of Valid-Exclusive removes the V-Ex states.
  const Protocol base = protocols::illinois();
  const auto mutants = ProtocolMutator::enumerate(base);
  const auto it = std::find_if(
      mutants.begin(), mutants.end(), [](const ProtocolMutant& m) {
        return m.description.find("ValidExclusive->Shared") !=
               std::string::npos;
      });
  ASSERT_NE(it, mutants.end());
  const ProtocolDiff d = diff_protocols(base, it->protocol);
  EXPECT_FALSE(d.states_only_in_a.empty());
  bool vex_removed = false;
  for (const std::string& s : d.states_only_in_a) {
    vex_removed = vex_removed || s.find("ValidExclusive") != std::string::npos;
  }
  EXPECT_TRUE(vex_removed);
}

TEST(Diff, RenamedStatesDoNotMatch) {
  // diff is literal by design: Illinois vs MESI differ textually even
  // though compare_protocols proves them isomorphic.
  const ProtocolDiff d =
      diff_protocols(protocols::illinois(), protocols::mesi());
  EXPECT_FALSE(d.identical());
}

// ------------------------------------------------------- pruning ablation

class PruningAblation : public ::testing::TestWithParam<std::string> {};

TEST_P(PruningAblation, EqualityOnlyConvergesToASuperset) {
  const Protocol p = protocols::by_name(GetParam());
  const ExpansionResult full = SymbolicExpander(p).run();

  SymbolicExpander::Options weak;
  weak.pruning = PruningMode::EqualityOnly;
  const ExpansionResult eq = SymbolicExpander(p, weak).run();

  // Weaker pruning never shrinks the result set and never reduces visits.
  EXPECT_GE(eq.essential.size(), full.essential.size());
  EXPECT_GE(eq.stats.visits, full.stats.visits);
  EXPECT_EQ(eq.stats.evicted, 0u);
  EXPECT_EQ(eq.stats.source_restarts, 0u);

  // Every equality-mode state is contained in some essential state
  // (they are members of the essential families), and every essential
  // state is literally present in the equality-mode set.
  for (const CompositeState& s : eq.essential) {
    const bool covered = std::any_of(
        full.essential.begin(), full.essential.end(),
        [&s](const CompositeState& e) { return s.contained_in(e); });
    EXPECT_TRUE(covered) << s.to_string(p);
  }
  for (const CompositeState& e : full.essential) {
    const bool present =
        std::find(eq.essential.begin(), eq.essential.end(), e) !=
        eq.essential.end();
    EXPECT_TRUE(present) << e.to_string(p);
  }
}

TEST_P(PruningAblation, VerdictsAgreeAcrossPruningModes) {
  // Pruning strength must not change the pass/fail verdict -- checked on
  // the buggy variants too (below, for one representative).
  const Protocol p = protocols::by_name(GetParam());
  for (const PruningMode mode :
       {PruningMode::Containment, PruningMode::EqualityOnly}) {
    SymbolicExpander::Options opt;
    opt.pruning = mode;
    const ExpansionResult r = SymbolicExpander(p, opt).run();
    bool erroneous = false;
    const auto invariants = Invariant::standard_for(p);
    for (const ArchiveEntry& entry : r.archive) {
      for (const Invariant& inv : invariants) {
        if (inv.check(p, entry.state).has_value()) erroneous = true;
      }
    }
    EXPECT_FALSE(erroneous) << GetParam();
  }
}

std::vector<std::string> protocol_names() {
  std::vector<std::string> names;
  for (const protocols::NamedProtocol& np : protocols::all()) {
    names.push_back(np.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PruningAblation,
                         ::testing::ValuesIn(protocol_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(PruningAblationErrors, BuggyVariantCaughtUnderBothModes) {
  const Protocol p = protocols::dragon_no_broadcast();
  const auto invariants = Invariant::standard_for(p);
  for (const PruningMode mode :
       {PruningMode::Containment, PruningMode::EqualityOnly}) {
    SymbolicExpander::Options opt;
    opt.pruning = mode;
    const ExpansionResult r = SymbolicExpander(p, opt).run();
    bool erroneous = false;
    for (const ArchiveEntry& entry : r.archive) {
      for (const Invariant& inv : invariants) {
        if (inv.check(p, entry.state).has_value()) erroneous = true;
      }
    }
    EXPECT_TRUE(erroneous);
  }
}

}  // namespace
}  // namespace ccver
