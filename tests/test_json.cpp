/// \file test_json.cpp
/// The JSON writer and the machine-readable verification report.

#include <gtest/gtest.h>

#include "core/report_json.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"
#include "util/json.hpp"

namespace ccver {
namespace {

TEST(JsonWriter, EmitsObjectsArraysAndScalars) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("x");
  json.key("ok").value(true);
  json.key("n").value(std::uint64_t{42});
  json.key("list").begin_array();
  json.value("a");
  json.value(std::uint64_t{1});
  json.end_array();
  json.key("empty").begin_object();
  json.end_object();
  json.end_object();
  EXPECT_EQ(std::move(json).str(),
            R"({"name":"x","ok":true,"n":42,"list":["a",1],"empty":{}})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_array();
  json.value("quote \" backslash \\ newline \n tab \t");
  json.value(std::string_view("ctl \x01", 5));
  json.end_array();
  EXPECT_EQ(std::move(json).str(),
            "[\"quote \\\" backslash \\\\ newline \\n tab \\t\","
            "\"ctl \\u0001\"]");
}

TEST(JsonWriter, RejectsStructuralMisuse) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value("no key"), InternalError);
  }
  {
    JsonWriter json;
    json.begin_object();
    json.key("k");
    EXPECT_THROW(json.key("again"), InternalError);
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.end_object(), InternalError);
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW((void)std::move(json).str(), InternalError);
  }
}

namespace {

/// A structural sanity scan: balanced braces/brackets outside strings.
bool balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

}  // namespace

TEST(ReportJson, VerifiedProtocolIncludesGraph) {
  const Protocol p = protocols::illinois();
  const VerificationReport report = Verifier(p).verify();
  const std::string json = report_to_json(report, p);
  EXPECT_TRUE(balanced(json));
  EXPECT_NE(json.find("\"protocol\":\"Illinois\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"visits\":23"), std::string::npos);
  EXPECT_NE(json.find("\"graph\""), std::string::npos);
  EXPECT_NE(json.find("\"n_steps\""), std::string::npos);
  EXPECT_EQ(json.find("\"errors\":[]") == std::string::npos, false);
}

TEST(ReportJson, ErroneousProtocolIncludesCounterexamples) {
  const Protocol p = protocols::dragon_no_broadcast();
  Verifier::Options opt;
  opt.build_graph = false;
  opt.max_errors = 1;
  const VerificationReport report = Verifier(p, opt).verify();
  const std::string json = report_to_json(report, p);
  EXPECT_TRUE(balanced(json));
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"invariant\":\"data-consistency\""),
            std::string::npos);
  EXPECT_NE(json.find("\"path\":["), std::string::npos);
  EXPECT_EQ(json.find("\"graph\""), std::string::npos);
}

TEST(ReportJson, AllProtocolsSerializeCleanly) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const Protocol p = np.factory();
    const VerificationReport report = Verifier(p).verify();
    EXPECT_TRUE(balanced(report_to_json(report, p))) << np.name;
  }
}

}  // namespace
}  // namespace ccver
