/// \file test_loader.cpp
/// File-level spec handling: the shipped specs/ directory loads and
/// matches the built-in library exactly, save/load round-trips through a
/// temporary directory, and I/O errors are reported as SpecError.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <filesystem>
#include <fstream>

#include "core/verifier.hpp"
#include "protocols/protocols.hpp"
#include "spec/loader.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

/// Locates the repository's specs/ directory relative to the test binary
/// (build/tests/..) or the current working directory.
fs::path specs_dir() {
  for (fs::path base : {fs::current_path(), fs::current_path() / "..",
                        fs::current_path() / "../.."}) {
    if (fs::exists(base / "specs" / "illinois.ccp")) return base / "specs";
  }
  return "/root/repo/specs";  // repository default
}

std::string spec_file_name(const std::string& protocol) {
  std::string name;
  for (const char c : protocol) {
    name += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name + ".ccp";
}

class ShippedSpecs : public ::testing::TestWithParam<std::string> {};

TEST_P(ShippedSpecs, LoadsAndMatchesTheBuiltinDefinition) {
  const Protocol builtin = protocols::by_name(GetParam());
  const fs::path path = specs_dir() / spec_file_name(GetParam());
  ASSERT_TRUE(fs::exists(path)) << path;
  const Protocol loaded = load_protocol_file(path);
  EXPECT_TRUE(loaded == builtin) << path;
}

TEST_P(ShippedSpecs, LoadedProtocolVerifies) {
  const Protocol loaded =
      load_protocol_file(specs_dir() / spec_file_name(GetParam()));
  const VerificationReport report = Verifier(loaded).verify();
  EXPECT_TRUE(report.ok) << report.summary(loaded);
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  for (const protocols::NamedProtocol& np : protocols::all()) {
    out.push_back(np.name);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ShippedSpecs,
                         ::testing::ValuesIn(names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

class LoaderIo : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test process: ctest runs the discovered cases in
    // parallel, and a shared directory would let one case's TearDown
    // delete another's files mid-test.
    dir_ = fs::temp_directory_path() /
           ("ccver_loader_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(LoaderIo, SaveThenLoadRoundTrips) {
  const Protocol original = protocols::dragon();
  const fs::path path = dir_ / "dragon.ccp";
  save_protocol_file(original, path);
  const Protocol loaded = load_protocol_file(path);
  EXPECT_TRUE(loaded == original);
}

TEST_F(LoaderIo, MissingFileRaisesSpecError) {
  EXPECT_THROW((void)load_protocol_file(dir_ / "nonesuch.ccp"), SpecError);
}

TEST_F(LoaderIo, ParseErrorsCarryTheFileName) {
  const fs::path path = dir_ / "broken.ccp";
  std::ofstream(path) << "protocol Broken {\n  invalid state I\n";  // EOF
  try {
    (void)load_protocol_file(path);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("broken.ccp"), std::string::npos);
  }
}

TEST_F(LoaderIo, ParseErrorsReanchorToPathLineColumn) {
  // Located parse errors come back as `<path>:<line>:<col>: <detail>` --
  // the `spec` pseudo-file of the string-level parser is replaced by the
  // real path, keeping the position.
  const fs::path path = dir_ / "located.ccp";
  std::ofstream(path) << "protocol X {\n  characteristic null\n"
                         "  invalid state I\n  state V\n"
                         "  rule Bogus R -> V { }\n}\n";
  try {
    (void)load_protocol_file(path);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string expected = path.string() + ":5:8: unknown state";
    EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
        << e.what();
    EXPECT_EQ(e.span(), (SourceSpan{5, 8}));
  }
}

TEST_F(LoaderIo, UnwritableTargetRaisesSpecError) {
  EXPECT_THROW(
      save_protocol_file(protocols::msi(), dir_ / "no" / "such" / "dir.ccp"),
      SpecError);
}

}  // namespace
}  // namespace ccver
