/// \file test_lint.cpp
/// Specification liveness diagnostics: the whole library is lint-clean,
/// and synthetic specs with dead states, unsatisfiable guards and stuck
/// transient states are flagged.

#include <gtest/gtest.h>

#include "core/lint.hpp"
#include "fsm/builder.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

TEST(Lint, EveryLibraryProtocolIsClean) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const auto warnings = lint_protocol(np.factory());
    EXPECT_TRUE(warnings.empty())
        << np.name << ": " << warnings.front().detail;
  }
}

/// Illinois plus a "Trap" state entered only by a custom op whose guard is
/// unsatisfiable from the state it reads (ValidExclusive is exclusive, so
/// it never observes sharing).
Protocol with_dead_trap_state() {
  ProtocolBuilder b("DeadTrap", CharacteristicKind::SharingDetection);
  const StateId inv = b.invalid_state("Invalid");
  const StateId ve = b.state("ValidExclusive");
  const StateId trap = b.state("Trap");
  const OpId hop = b.add_op("Hop", /*is_write=*/false);

  // Read misses *steal* the block (observe VE -> Invalid), so at most one
  // valid copy ever exists and f is false from VE's perspective forever.
  b.rule(inv, StdOps::Read)
      .to(ve)
      .observe(ve, inv)
      .observe(trap, inv)
      .load_memory();
  b.rule(ve, StdOps::Read).to(ve);
  b.rule(trap, StdOps::Read).to(trap);
  b.rule(inv, StdOps::Write).to(ve).invalidate_others().load_memory().store();
  b.rule(ve, StdOps::Write).to(ve).invalidate_others().store();
  b.rule(trap, StdOps::Write).to(trap).store();
  b.rule(ve, StdOps::Replace).to(inv);
  b.rule(trap, StdOps::Replace).to(inv);
  // The only way into Trap: a Hop from Valid-Exclusive under sharing --
  // but every write/read keeps the copy exclusive, so f is always false
  // from VE and the rule never fires.
  b.rule(ve, hop).when_shared().to(trap);
  b.rule(ve, hop).when_unshared().to(ve);
  return std::move(b).build();
}

TEST(Lint, FlagsDeadStatesAndSubsumesTheirRules) {
  const auto warnings = lint_protocol(with_dead_trap_state());
  ASSERT_FALSE(warnings.empty());
  bool dead_state = false;
  for (const LintWarning& w : warnings) {
    if (w.kind == LintWarning::Kind::DeadState) {
      dead_state = true;
      EXPECT_NE(w.detail.find("Trap"), std::string::npos);
    }
    // Rules *from* the dead state must not be double-reported.
    if (w.kind == LintWarning::Kind::DeadRule) {
      EXPECT_EQ(w.detail.find("(Trap"), std::string::npos) << w.detail;
    }
  }
  EXPECT_TRUE(dead_state);
}

TEST(Lint, FlagsUnsatisfiableGuardRules) {
  const auto warnings = lint_protocol(with_dead_trap_state());
  bool dead_rule = false;
  for (const LintWarning& w : warnings) {
    if (w.kind == LintWarning::Kind::DeadRule &&
        w.detail.find("Hop") != std::string::npos &&
        w.detail.find("shared") != std::string::npos) {
      dead_rule = true;
    }
  }
  EXPECT_TRUE(dead_rule);
}

TEST(Lint, FlagsStuckTransientStates) {
  // A pending state with stalls but no completion rule: the processor can
  // never make progress on its own.
  ProtocolBuilder b("Stuck", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("Invalid");
  const StateId pend = b.state("Pending");
  const StateId d = b.state("Dirty");

  b.rule(inv, StdOps::Read).to(pend).load_memory();
  b.rule(pend, StdOps::Read).stall();
  b.rule(pend, StdOps::Write).stall();
  b.rule(pend, StdOps::Replace).stall();
  b.rule(d, StdOps::Read).to(d);
  b.rule(inv, StdOps::Write)
      .to(d)
      .invalidate_others()
      .load_memory()
      .store();
  b.rule(d, StdOps::Write).to(d).store();
  b.rule(d, StdOps::Replace).to(inv).writeback_self();
  // Connectivity escape hatch: a write by another cache aborts Pending --
  // but that is not self-initiated progress.
  // (invalidate_others on the write rules maps Pending -> Invalid.)
  const Protocol p = std::move(b).build();

  const auto warnings = lint_protocol(p);
  bool stuck = false;
  for (const LintWarning& w : warnings) {
    if (w.kind == LintWarning::Kind::StuckTransient) {
      stuck = true;
      EXPECT_NE(w.detail.find("Pending"), std::string::npos);
    }
  }
  EXPECT_TRUE(stuck);
}

TEST(Lint, KindNamesAreStable) {
  EXPECT_EQ(to_string(LintWarning::Kind::DeadState), "dead-state");
  EXPECT_EQ(to_string(LintWarning::Kind::DeadRule), "dead-rule");
  EXPECT_EQ(to_string(LintWarning::Kind::StuckTransient), "stuck-transient");
}

}  // namespace
}  // namespace ccver
