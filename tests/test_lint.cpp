/// \file test_lint.cpp
/// Reachability-layer diagnostics of the analysis engine: the whole
/// library is lint-clean, and synthetic specs with dead states,
/// unsatisfiable guards and stuck transient states are flagged.
/// (Structural and data-flow checks are covered by test_analysis.cpp.)

#include <gtest/gtest.h>

#include "analysis/checks.hpp"
#include "fsm/builder.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

[[nodiscard]] bool has_check(const LintReport& report, std::string_view id) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.check == id) return true;
  }
  return false;
}

TEST(Lint, EveryLibraryProtocolIsClean) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const LintReport report = lint_protocol(np.factory());
    EXPECT_TRUE(report.clean())
        << np.name << ": " << report.diagnostics.front().check << ": "
        << report.diagnostics.front().message;
  }
}

/// Illinois plus a "Trap" state entered only by a custom op whose guard is
/// unsatisfiable from the state it reads (ValidExclusive is exclusive, so
/// it never observes sharing).
Protocol with_dead_trap_state() {
  ProtocolBuilder b("DeadTrap", CharacteristicKind::SharingDetection);
  const StateId inv = b.invalid_state("Invalid");
  const StateId ve = b.state("ValidExclusive");
  const StateId trap = b.state("Trap");
  const OpId hop = b.add_op("Hop", /*is_write=*/false);

  // Read misses *steal* the block (observe VE -> Invalid), so at most one
  // valid copy ever exists and f is false from VE's perspective forever.
  b.rule(inv, StdOps::Read)
      .to(ve)
      .observe(ve, inv)
      .observe(trap, inv)
      .load_memory();
  b.rule(ve, StdOps::Read).to(ve);
  b.rule(trap, StdOps::Read).to(trap);
  b.rule(inv, StdOps::Write).to(ve).invalidate_others().load_memory().store();
  b.rule(ve, StdOps::Write).to(ve).invalidate_others().store();
  b.rule(trap, StdOps::Write).to(trap).store();
  b.rule(ve, StdOps::Replace).to(inv);
  b.rule(trap, StdOps::Replace).to(inv);
  // The only way into Trap: a Hop from Valid-Exclusive under sharing --
  // but every write/read keeps the copy exclusive, so f is always false
  // from VE and the rule never fires.
  b.rule(ve, hop).when_shared().to(trap);
  b.rule(ve, hop).when_unshared().to(ve);
  return std::move(b).build();
}

TEST(Lint, FlagsDeadStatesAndSubsumesTheirRules) {
  const LintReport report = lint_protocol(with_dead_trap_state());
  ASSERT_FALSE(report.clean());
  bool dead_state = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.check == "dead-state") {
      dead_state = true;
      EXPECT_NE(d.message.find("Trap"), std::string::npos);
      EXPECT_EQ(d.severity, Severity::Warning);
    }
    // Rules *from* the dead state must not be double-reported.
    if (d.check == "dead-rule") {
      EXPECT_EQ(d.message.find("(Trap"), std::string::npos) << d.message;
    }
  }
  EXPECT_TRUE(dead_state);
}

TEST(Lint, FlagsUnsatisfiableGuardRules) {
  const LintReport report = lint_protocol(with_dead_trap_state());
  bool dead_rule = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.check == "dead-rule" &&
        d.message.find("Hop") != std::string::npos &&
        d.message.find("shared") != std::string::npos) {
      dead_rule = true;
    }
  }
  EXPECT_TRUE(dead_rule);
}

TEST(Lint, DisabledChecksAreSkipped) {
  LintOptions options;
  options.disabled = {"dead-state", "dead-rule", "store-no-invalidate"};
  const LintReport report = lint_protocol(with_dead_trap_state(), options);
  EXPECT_FALSE(has_check(report, "dead-state"));
  EXPECT_FALSE(has_check(report, "dead-rule"));
}

TEST(Lint, PerCheckTimersAreRecorded) {
  MetricsRegistry metrics;
  LintOptions options;
  options.metrics = &metrics;
  (void)lint_protocol(with_dead_trap_state(), options);
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_TRUE(snapshot.timers.contains("lint.check.dead-state"));
  EXPECT_TRUE(snapshot.timers.contains("lint.check.duplicate-rule"));
  EXPECT_TRUE(snapshot.timers.contains("lint.expansion"));
}

TEST(Lint, FlagsStuckTransientStates) {
  // A pending state with stalls but no completion rule: the processor can
  // never make progress on its own.
  ProtocolBuilder b("Stuck", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("Invalid");
  const StateId pend = b.state("Pending");
  const StateId d = b.state("Dirty");

  b.rule(inv, StdOps::Read).to(pend).load_memory();
  b.rule(pend, StdOps::Read).stall();
  b.rule(pend, StdOps::Write).stall();
  b.rule(pend, StdOps::Replace).stall();
  b.rule(d, StdOps::Read).to(d);
  b.rule(inv, StdOps::Write)
      .to(d)
      .invalidate_others()
      .load_memory()
      .store();
  b.rule(d, StdOps::Write).to(d).store();
  b.rule(d, StdOps::Replace).to(inv).writeback_self();
  // Connectivity escape hatch: a write by another cache aborts Pending --
  // but that is not self-initiated progress.
  // (invalidate_others on the write rules maps Pending -> Invalid.)
  const Protocol p = std::move(b).build();

  const LintReport report = lint_protocol(p);
  bool stuck = false;
  for (const Diagnostic& d2 : report.diagnostics) {
    if (d2.check == "stuck-transient") {
      stuck = true;
      EXPECT_NE(d2.message.find("Pending"), std::string::npos);
    }
  }
  EXPECT_TRUE(stuck);
}

TEST(Lint, RegistryIdsAreStableAndComplete) {
  for (const char* id :
       {"parse-error", "duplicate-rule", "rule-overlap", "guard-in-null",
        "missing-coverage", "unused-op", "owner-evict-no-writeback",
        "store-no-invalidate", "load-prefer-missing-owner", "dead-state",
        "dead-rule", "stuck-transient", "global-deadlock",
        "livelock-cycle", "unreachable-completion", "layer-skipped"}) {
    const CheckInfo* info = find_check(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->id, id);
    EXPECT_FALSE(info->description.empty());
  }
  EXPECT_EQ(all_checks().size(), 16u);
  EXPECT_EQ(find_check("no-such-check"), nullptr);
}

}  // namespace
}  // namespace ccver
