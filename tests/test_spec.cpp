/// \file test_spec.cpp
/// The `.ccp` specification language: lexer behavior, parser acceptance,
/// error positions, and the round-trip property `parse(to_spec(p)) == p`
/// over the entire protocol library.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/verifier.hpp"
#include "protocols/protocols.hpp"
#include "spec/lexer.hpp"
#include "spec/loader.hpp"
#include "spec/parser.hpp"
#include "spec/writer.hpp"

namespace ccver {
namespace {

TEST(Lexer, TokenizesWordsBracesAndArrows) {
  const auto tokens = Lexer::tokenize("rule A R -> B { }");
  ASSERT_EQ(tokens.size(), 8u);  // includes End
  EXPECT_EQ(tokens[0].kind, TokenKind::Word);
  EXPECT_EQ(tokens[0].text, "rule");
  EXPECT_EQ(tokens[3].kind, TokenKind::Arrow);
  EXPECT_EQ(tokens[5].kind, TokenKind::LBrace);
  EXPECT_EQ(tokens[6].kind, TokenKind::RBrace);
  EXPECT_EQ(tokens[7].kind, TokenKind::End);
}

TEST(Lexer, SkipsCommentsAndTracksLines) {
  const auto tokens = Lexer::tokenize("# comment\n  word");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].line, 2u);
  EXPECT_EQ(tokens[0].column, 3u);
}

TEST(Lexer, DecodesStringEscapes) {
  const auto tokens = Lexer::tokenize(R"("a \"quoted\" \\ thing")");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::String);
  EXPECT_EQ(tokens[0].text, "a \"quoted\" \\ thing");
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_THROW(Lexer::tokenize("\"oops"), SpecError);
}

TEST(Lexer, RejectsStrayCharacter) {
  EXPECT_THROW(Lexer::tokenize("a $ b"), SpecError);
}

TEST(Lexer, WordsMayContainDashes) {
  const auto tokens = Lexer::tokenize("Shared-Dirty x->y");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "Shared-Dirty");
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].kind, TokenKind::Arrow);
}

constexpr std::string_view kMiniProtocol = R"(
# A two-state write-back protocol for parser tests.
protocol Mini {
  characteristic null
  invalid state I
  state D exclusive owner

  rule I R -> D {
    writeback from D
    observe D -> I
    load memory
    note "read miss steals the block"
  }
  rule D R -> D { }
  rule I W -> D {
    invalidate others
    writeback from D
    load memory
    store
  }
  rule D W -> D { store }
  rule D Z -> I { writeback self }
}
)";

TEST(Parser, AcceptsAMinimalProtocol) {
  const Protocol p = parse_protocol(kMiniProtocol);
  EXPECT_EQ(p.name(), "Mini");
  EXPECT_EQ(p.state_count(), 2u);
  EXPECT_EQ(p.rules().size(), 5u);
  EXPECT_EQ(p.characteristic(), CharacteristicKind::Null);
  EXPECT_EQ(p.exclusivity().size(), 1u);
}

TEST(Parser, ParsedProtocolVerifies) {
  const Protocol p = parse_protocol(kMiniProtocol);
  const VerificationReport report = Verifier(p).verify();
  EXPECT_TRUE(report.ok) << report.summary(p);
}

/// Asserts that parsing `source` (strictly) raises a SpecError whose
/// message starts with the canonical `spec:<line>:<col>: ` location prefix
/// and mentions `needle`. Every parse failure -- lexer, grammar, builder
/// validation -- must go through this format.
void expect_parse_error_at(std::string_view source, std::string_view prefix,
                           std::string_view needle) {
  try {
    (void)parse_protocol(source);
    FAIL() << "expected SpecError from:\n" << source;
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find(prefix), 0u) << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
    EXPECT_TRUE(e.span().known()) << what;
  }
}

TEST(Parser, ReportsPositionOnUnknownState) {
  expect_parse_error_at(
      "protocol X {\n  characteristic null\n"
      "  invalid state I\n  state V\n"
      "  rule Bogus R -> V { }\n}",
      "spec:5:8: ", "unknown state 'Bogus'");
}

TEST(Parser, ReportsPositionOnUnknownOp) {
  expect_parse_error_at(
      "protocol X {\n  characteristic null\n"
      "  invalid state I\n  state V\n"
      "  rule V Flush -> V { }\n}",
      "spec:5:10: ", "unknown operation 'Flush'");
}

TEST(Parser, ReportsPositionOnLexerError) {
  expect_parse_error_at("protocol X {\n  state $ I\n}", "spec:2:9: ",
                        "unexpected character");
}

TEST(Parser, ReportsRulePositionOnGuardUnderNull) {
  // A builder-validation failure tied to one rule must surface at that
  // rule's `rule` keyword, not at the protocol header.
  expect_parse_error_at(
      "protocol X {\n  characteristic null\n"
      "  invalid state I\n  state V\n"
      "  rule I R when shared -> V { load memory }\n}",
      "spec:5:3: ", "sharing guard requires");
}

TEST(Parser, ReportsStatePositionOnMissingCoverage) {
  // Coverage holes anchor to the uncovered state's declaration.
  expect_parse_error_at(
      "protocol X {\n  characteristic null\n"
      "  invalid state I\n  state V\n"
      "  rule I R -> V { load memory }\n"
      "  rule V R -> V { }\n"
      "  rule V Z -> I { }\n}",
      "spec:3:3: ", "state I has no rule for op W");
}

TEST(Parser, ReportsProtocolPositionOnWholeSpecErrors) {
  // No invalid state: there is no single offending declaration, so the
  // error anchors to the `protocol` keyword.
  expect_parse_error_at("protocol X {\n  characteristic null\n}",
                        "spec:1:1: ", "declares no invalid state");
}

TEST(Parser, ThreadsDeclarationSpansIntoTheProtocol) {
  const Protocol p = parse_protocol(kMiniProtocol);
  // kMiniProtocol opens with a blank line and a comment: `invalid state I`
  // sits on line 5, `state D` on line 6, the first rule on line 8.
  EXPECT_EQ(p.state_span(0), (SourceSpan{5, 3}));
  EXPECT_EQ(p.state_span(1), (SourceSpan{6, 3}));
  EXPECT_EQ(p.rule_span(0), (SourceSpan{8, 3}));
  // The standard ops are implicit -- no declaration, no span.
  EXPECT_FALSE(p.op_span(StdOps::Read).known());
}

TEST(Parser, BuilderProtocolsCarryNoSpans) {
  const Protocol p = protocols::by_name("MSI");
  EXPECT_FALSE(p.state_span(0).known());
  EXPECT_FALSE(p.rule_span(0).known());
}

TEST(Parser, LenientModeAdmitsLintableDefects) {
  // Strict parsing rejects the duplicated read hit; lenient parsing keeps
  // both copies for the analysis layer to diagnose.
  const std::string source =
      "protocol X {\n  characteristic null\n"
      "  invalid state I\n  state V\n"
      "  rule I R -> V { load memory }\n"
      "  rule V R -> V { }\n"
      "  rule V R -> V { }\n"
      "  rule I W -> V { invalidate others\n load memory\n store }\n"
      "  rule V W -> V { invalidate others\n store }\n"
      "  rule V Z -> I { }\n}";
  EXPECT_THROW((void)parse_protocol(source), SpecError);
  const Protocol p = parse_protocol_lenient(source);
  EXPECT_EQ(p.rules().size(), 6u);
}

TEST(Parser, LenientModeStillRejectsCorruptingDefects) {
  // An unknown state reference cannot produce a usable Protocol object;
  // even lenient parsing must throw.
  EXPECT_THROW((void)parse_protocol_lenient(
                   "protocol X {\n  characteristic null\n"
                   "  invalid state I\n  state V\n"
                   "  rule Bogus R -> V { }\n}"),
               SpecError);
}

TEST(Parser, RejectsCharacteristicAfterDeclarations) {
  EXPECT_THROW((void)parse_protocol("protocol X {\n  invalid state I\n"
                                    "  characteristic sharing\n}"),
               SpecError);
}

TEST(Parser, RejectsGuardsUnderNullCharacteristic) {
  EXPECT_THROW(
      (void)parse_protocol("protocol X {\n  characteristic null\n"
                           "  invalid state I\n  state V\n"
                           "  rule I R when shared -> V { load memory }\n}"),
      SpecError);
}

TEST(Parser, RejectsDuplicateState) {
  EXPECT_THROW((void)parse_protocol("protocol X {\n  invalid state I\n"
                                    "  state I\n}"),
               SpecError);
}

TEST(Parser, RejectsMissingCoverage) {
  // State V has no W rule: builder validation must fire through the parser.
  EXPECT_THROW((void)parse_protocol("protocol X {\n  characteristic null\n"
                                    "  invalid state I\n  state V\n"
                                    "  rule I R -> V { load memory }\n"
                                    "  rule V R -> V { }\n"
                                    "  rule V Z -> I { }\n}"),
               SpecError);
}

class RoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTrip, WriteThenParseIsIdentity) {
  const Protocol original = protocols::by_name(GetParam());
  const std::string source = to_spec(original);
  const Protocol reparsed = parse_protocol(source);
  EXPECT_TRUE(reparsed == original) << source;
}

TEST_P(RoundTrip, ReparsedProtocolVerifiesIdentically) {
  const Protocol original = protocols::by_name(GetParam());
  const Protocol reparsed = parse_protocol(to_spec(original));
  const VerificationReport a = Verifier(original).verify();
  const VerificationReport b = Verifier(reparsed).verify();
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.essential.size(), b.essential.size());
  EXPECT_EQ(a.stats.visits, b.stats.visits);
}

std::vector<std::string> protocol_names() {
  std::vector<std::string> names;
  for (const protocols::NamedProtocol& np : protocols::all()) {
    names.push_back(np.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RoundTrip,
                         ::testing::ValuesIn(protocol_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

/// File-level round trip over every shipped spec: parsing a `.ccp` file,
/// writing it back out and reparsing must reproduce the same protocol
/// (declaration order of ops, states and rules included). Source spans are
/// provenance, not specification, so the rewritten spec's fresh positions
/// do not break equality.
class FileRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(FileRoundTrip, ParseWriteReparseIsIdentity) {
  const std::filesystem::path path =
      std::filesystem::path(CCVER_SOURCE_DIR) / "specs" / GetParam();
  const Protocol original = load_protocol_file(path);
  const Protocol reparsed = parse_protocol(to_spec(original));
  EXPECT_TRUE(reparsed == original) << path;
}

TEST_P(FileRoundTrip, FileSpansAreKnown) {
  const std::filesystem::path path =
      std::filesystem::path(CCVER_SOURCE_DIR) / "specs" / GetParam();
  const Protocol p = load_protocol_file(path);
  for (std::size_t s = 0; s < p.state_count(); ++s) {
    EXPECT_TRUE(p.state_span(static_cast<StateId>(s)).known()) << path;
  }
  for (std::size_t i = 0; i < p.rules().size(); ++i) {
    EXPECT_TRUE(p.rule_span(i).known()) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecFiles, FileRoundTrip,
    ::testing::Values("berkeley.ccp", "dragon.ccp", "firefly.ccp",
                      "illinois.ccp", "illinoissplit.ccp", "mesi.ccp",
                      "moesi.ccp", "moesisplit.ccp", "msi.ccp",
                      "synapse.ccp", "writeonce.ccp"),
    [](const ::testing::TestParamInfo<std::string>& i) {
      std::string name = i.param.substr(0, i.param.find('.'));
      return name;
    });

}  // namespace
}  // namespace ccver
