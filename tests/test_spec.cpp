/// \file test_spec.cpp
/// The `.ccp` specification language: lexer behavior, parser acceptance,
/// error positions, and the round-trip property `parse(to_spec(p)) == p`
/// over the entire protocol library.

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "protocols/protocols.hpp"
#include "spec/lexer.hpp"
#include "spec/parser.hpp"
#include "spec/writer.hpp"

namespace ccver {
namespace {

TEST(Lexer, TokenizesWordsBracesAndArrows) {
  const auto tokens = Lexer::tokenize("rule A R -> B { }");
  ASSERT_EQ(tokens.size(), 8u);  // includes End
  EXPECT_EQ(tokens[0].kind, TokenKind::Word);
  EXPECT_EQ(tokens[0].text, "rule");
  EXPECT_EQ(tokens[3].kind, TokenKind::Arrow);
  EXPECT_EQ(tokens[5].kind, TokenKind::LBrace);
  EXPECT_EQ(tokens[6].kind, TokenKind::RBrace);
  EXPECT_EQ(tokens[7].kind, TokenKind::End);
}

TEST(Lexer, SkipsCommentsAndTracksLines) {
  const auto tokens = Lexer::tokenize("# comment\n  word");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].line, 2u);
  EXPECT_EQ(tokens[0].column, 3u);
}

TEST(Lexer, DecodesStringEscapes) {
  const auto tokens = Lexer::tokenize(R"("a \"quoted\" \\ thing")");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::String);
  EXPECT_EQ(tokens[0].text, "a \"quoted\" \\ thing");
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_THROW(Lexer::tokenize("\"oops"), SpecError);
}

TEST(Lexer, RejectsStrayCharacter) {
  EXPECT_THROW(Lexer::tokenize("a $ b"), SpecError);
}

TEST(Lexer, WordsMayContainDashes) {
  const auto tokens = Lexer::tokenize("Shared-Dirty x->y");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "Shared-Dirty");
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].kind, TokenKind::Arrow);
}

constexpr std::string_view kMiniProtocol = R"(
# A two-state write-back protocol for parser tests.
protocol Mini {
  characteristic null
  invalid state I
  state D exclusive owner

  rule I R -> D {
    writeback from D
    observe D -> I
    load memory
    note "read miss steals the block"
  }
  rule D R -> D { }
  rule I W -> D {
    invalidate others
    writeback from D
    load memory
    store
  }
  rule D W -> D { store }
  rule D Z -> I { writeback self }
}
)";

TEST(Parser, AcceptsAMinimalProtocol) {
  const Protocol p = parse_protocol(kMiniProtocol);
  EXPECT_EQ(p.name(), "Mini");
  EXPECT_EQ(p.state_count(), 2u);
  EXPECT_EQ(p.rules().size(), 5u);
  EXPECT_EQ(p.characteristic(), CharacteristicKind::Null);
  EXPECT_EQ(p.exclusivity().size(), 1u);
}

TEST(Parser, ParsedProtocolVerifies) {
  const Protocol p = parse_protocol(kMiniProtocol);
  const VerificationReport report = Verifier(p).verify();
  EXPECT_TRUE(report.ok) << report.summary(p);
}

TEST(Parser, ReportsPositionOnUnknownState) {
  try {
    (void)parse_protocol("protocol X {\n  characteristic null\n"
                         "  invalid state I\n  state V\n"
                         "  rule Bogus R -> V { }\n}");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("spec:5"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("Bogus"), std::string::npos);
  }
}

TEST(Parser, RejectsCharacteristicAfterDeclarations) {
  EXPECT_THROW((void)parse_protocol("protocol X {\n  invalid state I\n"
                                    "  characteristic sharing\n}"),
               SpecError);
}

TEST(Parser, RejectsGuardsUnderNullCharacteristic) {
  EXPECT_THROW(
      (void)parse_protocol("protocol X {\n  characteristic null\n"
                           "  invalid state I\n  state V\n"
                           "  rule I R when shared -> V { load memory }\n}"),
      SpecError);
}

TEST(Parser, RejectsDuplicateState) {
  EXPECT_THROW((void)parse_protocol("protocol X {\n  invalid state I\n"
                                    "  state I\n}"),
               SpecError);
}

TEST(Parser, RejectsMissingCoverage) {
  // State V has no W rule: builder validation must fire through the parser.
  EXPECT_THROW((void)parse_protocol("protocol X {\n  characteristic null\n"
                                    "  invalid state I\n  state V\n"
                                    "  rule I R -> V { load memory }\n"
                                    "  rule V R -> V { }\n"
                                    "  rule V Z -> I { }\n}"),
               SpecError);
}

class RoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTrip, WriteThenParseIsIdentity) {
  const Protocol original = protocols::by_name(GetParam());
  const std::string source = to_spec(original);
  const Protocol reparsed = parse_protocol(source);
  EXPECT_TRUE(reparsed == original) << source;
}

TEST_P(RoundTrip, ReparsedProtocolVerifiesIdentically) {
  const Protocol original = protocols::by_name(GetParam());
  const Protocol reparsed = parse_protocol(to_spec(original));
  const VerificationReport a = Verifier(original).verify();
  const VerificationReport b = Verifier(reparsed).verify();
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.essential.size(), b.essential.size());
  EXPECT_EQ(a.stats.visits, b.stats.visits);
}

std::vector<std::string> protocol_names() {
  std::vector<std::string> names;
  for (const protocols::NamedProtocol& np : protocols::all()) {
    names.push_back(np.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RoundTrip,
                         ::testing::ValuesIn(protocol_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace ccver
