/// \file test_graph.cpp
/// The reachability graph (Figure 4 generalized): construction over every
/// protocol, containment-based edge targeting, DOT output structure, and
/// the attribute vectors for non-Illinois protocols.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/graph.hpp"
#include "core/verifier.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

class GraphPerProtocol : public ::testing::TestWithParam<std::string> {};

TEST_P(GraphPerProtocol, NodesAreExactlyTheEssentialStates) {
  const Protocol p = protocols::by_name(GetParam());
  const ExpansionResult r = SymbolicExpander(p).run();
  const ReachabilityGraph g = ReachabilityGraph::build(p, r.essential);
  ASSERT_EQ(g.nodes().size(), r.essential.size());
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    EXPECT_EQ(g.nodes()[i], r.essential[i]);
  }
}

TEST_P(GraphPerProtocol, EveryEdgeEndpointIsValid) {
  const Protocol p = protocols::by_name(GetParam());
  const ExpansionResult r = SymbolicExpander(p).run();
  const ReachabilityGraph g = ReachabilityGraph::build(p, r.essential);
  EXPECT_FALSE(g.edges().empty());
  for (const ReachabilityGraph::Edge& e : g.edges()) {
    EXPECT_LT(e.from, g.nodes().size());
    EXPECT_LT(e.to, g.nodes().size());
    EXPECT_LT(e.label.op, p.op_count());
    EXPECT_LT(e.label.origin_state, p.state_count());
  }
}

TEST_P(GraphPerProtocol, EdgesAreDeduplicated) {
  const Protocol p = protocols::by_name(GetParam());
  const ExpansionResult r = SymbolicExpander(p).run();
  const ReachabilityGraph g = ReachabilityGraph::build(p, r.essential);
  for (std::size_t i = 0; i < g.edges().size(); ++i) {
    for (std::size_t j = i + 1; j < g.edges().size(); ++j) {
      const auto& a = g.edges()[i];
      const auto& b = g.edges()[j];
      EXPECT_FALSE(a.from == b.from && a.to == b.to && a.label == b.label)
          << GetParam() << ": duplicate edge " << a.label.to_string(p);
    }
  }
}

TEST_P(GraphPerProtocol, EveryNodeHasInAndOutDegree) {
  // All protocols here drain to (Invalid+) and refill, so no node is a
  // source or sink in the global diagram.
  const Protocol p = protocols::by_name(GetParam());
  const ExpansionResult r = SymbolicExpander(p).run();
  const ReachabilityGraph g = ReachabilityGraph::build(p, r.essential);
  for (std::size_t n = 0; n < g.nodes().size(); ++n) {
    const bool has_out = std::any_of(
        g.edges().begin(), g.edges().end(),
        [n](const ReachabilityGraph::Edge& e) { return e.from == n; });
    const bool has_in = std::any_of(
        g.edges().begin(), g.edges().end(),
        [n](const ReachabilityGraph::Edge& e) { return e.to == n; });
    EXPECT_TRUE(has_out) << g.nodes()[n].to_string(p);
    EXPECT_TRUE(has_in) << g.nodes()[n].to_string(p);
  }
}

TEST_P(GraphPerProtocol, DotOutputIsWellFormed) {
  const Protocol p = protocols::by_name(GetParam());
  const VerificationReport report = Verifier(p).verify();
  const std::string dot = report.graph.to_dot(p);
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
  // One node line per essential state, one edge line per edge.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(dot.begin(), dot.end(), '[')),
            report.graph.nodes().size() + report.graph.edges().size() +
                1 /* the global node [fontname] attribute */);
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  for (const protocols::NamedProtocol& np : protocols::all()) {
    out.push_back(np.name);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, GraphPerProtocol,
                         ::testing::ValuesIn(names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(Graph, FindContainingPrefersEquality) {
  const Protocol p = protocols::illinois();
  const ExpansionResult r = SymbolicExpander(p).run();
  const ReachabilityGraph g = ReachabilityGraph::build(p, r.essential);
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    EXPECT_EQ(g.find_containing(g.nodes()[i]), i);
  }
  // A strictly-contained state maps to its container.
  const CompositeState inner =
      CompositeState::parse(p, "(Dirty, Inv+) mem=obsolete");
  const auto idx = g.find_containing(inner);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(g.nodes()[*idx],
            CompositeState::parse(p, "(Dirty, Inv*) mem=obsolete"));
}

TEST(Graph, FindContainingReturnsEmptyForForeignStates) {
  const Protocol p = protocols::illinois();
  const ExpansionResult r = SymbolicExpander(p).run();
  const ReachabilityGraph g = ReachabilityGraph::build(p, r.essential);
  // (Dirty, Shared, ...) is not reachable in Illinois.
  const CompositeState foreign = CompositeState::parse(
      p, "(Dirty, Shared, Inv*) mem=obsolete level=many");
  EXPECT_FALSE(g.find_containing(foreign).has_value());
}

TEST(Graph, BergamotBerkeleyAttributeVectors) {
  // Berkeley's signature state: owner + clean copies while memory is
  // stale. Verify the rendered attribute vectors directly.
  const Protocol p = protocols::berkeley();
  const CompositeState s = CompositeState::parse(
      p, "(SharedDirty, Valid+, Inv*) mem=obsolete level=many");
  EXPECT_EQ(ReachabilityGraph::sharing_vector(p, s), "(true, true, true)");
  EXPECT_EQ(ReachabilityGraph::cdata_vector(p, s),
            "(fresh, fresh, nodata)");
}

}  // namespace
}  // namespace ccver
