/// \file test_parallel_expansion.cpp
/// Determinism of multi-threaded Figure-3 runs: the parallel symbolic
/// engine must be byte-identical to the serial one at any thread count --
/// same report JSON, same counters-bearing archive order, same essential
/// set -- and checkpoints cut under one thread count must resume under
/// another without a byte of divergence. Thread counts here are forced
/// past the adaptive clamp (`clamp_threads = false`) so real parallel
/// rounds run even on a single-core CI host.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/expansion.hpp"
#include "core/expansion_checkpoint.hpp"
#include "core/report_json.hpp"
#include "core/verifier.hpp"
#include "protocols/protocols.hpp"
#include "spec/loader.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] std::string report_json(const Protocol& p, PruningMode mode,
                                      std::size_t threads) {
  Verifier::Options opt;
  opt.pruning = mode;
  opt.threads = threads;
  opt.clamp_threads = false;  // force real workers on a 1-core host
  return report_to_json(Verifier(p, opt).verify(), p);
}

TEST(ParallelExpansion, ByteIdenticalAcrossThreadCountsOnEveryShippedSpec) {
  const fs::path specs = fs::path(CCVER_SOURCE_DIR) / "specs";
  std::size_t checked = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(specs)) {
    if (entry.path().extension() != ".ccp") continue;
    const Protocol p = load_protocol_file(entry.path());
    for (const PruningMode mode :
         {PruningMode::Containment, PruningMode::EqualityOnly}) {
      const std::string serial = report_json(p, mode, 1);
      for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        EXPECT_EQ(report_json(p, mode, threads), serial)
            << p.name() << " threads=" << threads << " mode="
            << (mode == PruningMode::Containment ? "containment" : "equality");
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 11u);
}

TEST(ParallelExpansion, HardwareDefaultAndClampedRequestsStaySerialEqual) {
  // threads = 0 resolves to the hardware count; an absurd request under the
  // adaptive clamp resolves to at most that. Both must match serial output.
  const Protocol p = protocols::moesi();
  Verifier::Options serial_opt;
  const std::string serial = report_to_json(Verifier(p, serial_opt).verify(), p);

  Verifier::Options hw_opt;
  hw_opt.threads = 0;
  EXPECT_EQ(report_to_json(Verifier(p, hw_opt).verify(), p), serial);

  Verifier::Options clamp_opt;
  clamp_opt.threads = 4096;  // clamp_threads defaults to true
  EXPECT_EQ(report_to_json(Verifier(p, clamp_opt).verify(), p), serial);
}

TEST(ParallelExpansion, TraceRecordingForcesOneWorkerAndMatchesReference) {
  const Protocol p = protocols::illinois();
  SymbolicExpander::Options ref_opt;
  ref_opt.record_trace = true;
  ref_opt.reference_engine = true;
  const ExpansionResult ref = SymbolicExpander(p, ref_opt).run();

  SymbolicExpander::Options par_opt;
  par_opt.record_trace = true;
  par_opt.threads = 8;
  par_opt.clamp_threads = false;
  const ExpansionResult r = SymbolicExpander(p, par_opt).run();
  ASSERT_EQ(r.trace.size(), ref.trace.size());
  for (std::size_t i = 0; i < ref.trace.size(); ++i) {
    EXPECT_EQ(r.trace[i].disposition, ref.trace[i].disposition) << i;
    EXPECT_TRUE(r.trace[i].to == ref.trace[i].to) << "trace diverges at " << i;
    EXPECT_TRUE(r.trace[i].label == ref.trace[i].label) << i;
  }
}

class ParallelCheckpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("ccver_parallel_expansion_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Interrupt a run at `cut` visits under `cut_threads`, resume it under
  /// `resume_threads`, and demand the stitched report equals the
  /// uninterrupted serial one byte for byte.
  void expect_resume_identical(const Protocol& p, PruningMode mode,
                               const std::string& uninterrupted,
                               std::size_t cut, std::size_t cut_threads,
                               std::size_t resume_threads) {
    const fs::path path =
        dir_ / (p.name() + "_" + std::to_string(cut) + "_" +
                std::to_string(cut_threads) + "to" +
                std::to_string(resume_threads) + ".ckpt");
    Verifier::Options part_opt;
    part_opt.pruning = mode;
    part_opt.max_visits = cut;
    part_opt.checkpoint_path = path.string();
    part_opt.threads = cut_threads;
    part_opt.clamp_threads = false;
    const VerificationReport partial = Verifier(p, part_opt).verify();
    if (partial.outcome == Outcome::Complete) {
      // The budget is polled between expansion steps; a small protocol can
      // drain its worklist inside the step that crosses `cut`, leaving no
      // interruption point here. Nothing to resume.
      EXPECT_EQ(report_to_json(partial, p), uninterrupted)
          << p.name() << " cut=" << cut;
      return;
    }
    ASSERT_TRUE(partial.checkpoint_written) << p.name() << " cut=" << cut;

    const SymbolicCheckpoint cp = load_symbolic_checkpoint(path);
    Verifier::Options resume_opt;
    resume_opt.pruning = mode;
    resume_opt.resume = &cp;
    resume_opt.threads = resume_threads;
    resume_opt.clamp_threads = false;
    EXPECT_EQ(report_to_json(Verifier(p, resume_opt).verify(), p),
              uninterrupted)
        << p.name() << " cut=" << cut << " " << cut_threads << " -> "
        << resume_threads << " threads";
  }

  fs::path dir_;
};

TEST_F(ParallelCheckpoint, QuarterCutsResumeAcrossThreadCounts) {
  // 25/50/75% interruption points, cut parallel -> resumed serial and cut
  // serial -> resumed parallel, for every spec x both pruning modes.
  const fs::path specs = fs::path(CCVER_SOURCE_DIR) / "specs";
  std::size_t checked = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(specs)) {
    if (entry.path().extension() != ".ccp") continue;
    const Protocol p = load_protocol_file(entry.path());
    for (const PruningMode mode :
         {PruningMode::Containment, PruningMode::EqualityOnly}) {
      SymbolicExpander::Options full_opt;
      full_opt.pruning = mode;
      const ExpansionResult full = SymbolicExpander(p, full_opt).run();
      const std::uint64_t visits = full.stats.visits;
      ASSERT_GT(visits, 4u) << p.name();
      const std::string uninterrupted = [&] {
        Verifier::Options opt;
        opt.pruning = mode;
        return report_to_json(Verifier(p, opt).verify(), p);
      }();

      for (const std::uint64_t pct : {25u, 50u, 75u}) {
        const std::size_t cut =
            static_cast<std::size_t>(std::max<std::uint64_t>(
                1, visits * pct / 100));
        expect_resume_identical(p, mode, uninterrupted, cut, 8, 1);
        expect_resume_identical(p, mode, uninterrupted, cut, 1, 8);
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 11u);
}

}  // namespace
}  // namespace ccver
