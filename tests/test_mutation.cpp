/// \file test_mutation.cpp
/// The mutation engine itself: operator coverage, mutant well-formedness,
/// determinism, and the hand-crafted variants' structural relationship to
/// their bases.

#include <gtest/gtest.h>

#include <algorithm>

#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

TEST(Mutator, WithRuleReplacesExactlyOneRule) {
  const Protocol base = protocols::illinois();
  Rule rule = base.rules()[0];
  rule.note = "changed";
  const Protocol mutant = ProtocolMutator::with_rule(base, 0, rule, "-X");
  EXPECT_EQ(mutant.name(), "Illinois-X");
  EXPECT_EQ(mutant.rules().size(), base.rules().size());
  EXPECT_EQ(mutant.rules()[0].note, "changed");
  for (std::size_t i = 1; i < base.rules().size(); ++i) {
    EXPECT_EQ(mutant.rules()[i], base.rules()[i]);
  }
}

TEST(Mutator, WithRuleKeepsLookupConsistent) {
  const Protocol base = protocols::illinois();
  const StateId sh = *base.find_state("Shared");
  std::size_t idx = 0;
  for (std::size_t i = 0; i < base.rules().size(); ++i) {
    if (base.rules()[i].from == sh && base.rules()[i].op == StdOps::Write) {
      idx = i;
    }
  }
  Rule rule = base.rules()[idx];
  rule.self_next = sh;
  const Protocol mutant = ProtocolMutator::with_rule(base, idx, rule, "-X");
  const Rule* found = mutant.find_rule(sh, StdOps::Write, true);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->self_next, sh);  // the reindexed table sees the change
}

TEST(Mutator, EnumerationIsDeterministic) {
  const auto a = ProtocolMutator::enumerate(protocols::dragon());
  const auto b = ProtocolMutator::enumerate(protocols::dragon());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].description, b[i].description);
    EXPECT_TRUE(a[i].protocol == b[i].protocol);
  }
}

TEST(Mutator, EveryMutantDiffersFromTheOriginal) {
  const Protocol base = protocols::moesi();
  for (const ProtocolMutant& m : ProtocolMutator::enumerate(base)) {
    EXPECT_FALSE(m.protocol == base) << m.description;
    EXPECT_NE(m.protocol.rules()[m.rule_index], base.rules()[m.rule_index])
        << m.description;
  }
}

TEST(Mutator, CoversAllFourOperatorFamilies) {
  const auto mutants = ProtocolMutator::enumerate(protocols::write_once());
  const auto count_containing = [&mutants](std::string_view needle) {
    return std::count_if(mutants.begin(), mutants.end(),
                         [needle](const ProtocolMutant& m) {
                           return m.description.find(needle) !=
                                  std::string::npos;
                         });
  };
  EXPECT_GT(count_containing("coincident transition"), 0);
  EXPECT_GT(count_containing("dropped"), 0);
  EXPECT_GT(count_containing("write-through degraded"), 0);
  EXPECT_GT(count_containing("retargeted"), 0);
}

TEST(BuggyVariants, AllTenAreRegisteredAndNamed) {
  const auto& variants = protocols::buggy_variants();
  ASSERT_EQ(variants.size(), 10u);
  for (const protocols::NamedMutant& v : variants) {
    const Protocol p = v.factory();
    // Mutant names carry the defect suffix appended to the base name.
    EXPECT_NE(p.name().find('-'), std::string::npos) << v.name;
  }
}

TEST(BuggyVariants, DifferFromTheirBasesByOneRule) {
  struct Pair {
    Protocol (*buggy)();
    Protocol (*base)();
  };
  const Pair pairs[] = {
      {&protocols::illinois_no_invalidate_on_write_hit,
       &protocols::illinois},
      {&protocols::illinois_drop_dirty_on_replace, &protocols::illinois},
      {&protocols::illinois_read_miss_ignores_sharers,
       &protocols::illinois},
      {&protocols::synapse_dirty_no_flush, &protocols::synapse},
      {&protocols::dragon_no_broadcast, &protocols::dragon},
      {&protocols::berkeley_owner_silent_drop, &protocols::berkeley},
      {&protocols::write_once_local_first_write, &protocols::write_once},
      {&protocols::mesi_write_miss_no_invalidate, &protocols::mesi},
      {&protocols::illinois_split_lost_invalidation,
       &protocols::illinois_split},
      {&protocols::moesi_split_upgrade_race, &protocols::moesi_split},
  };
  for (const Pair& pair : pairs) {
    const Protocol buggy = pair.buggy();
    const Protocol base = pair.base();
    ASSERT_EQ(buggy.rules().size(), base.rules().size());
    std::size_t differing = 0;
    for (std::size_t i = 0; i < base.rules().size(); ++i) {
      if (!(buggy.rules()[i] == base.rules()[i])) ++differing;
    }
    EXPECT_EQ(differing, 1u) << buggy.name();
  }
}

}  // namespace
}  // namespace ccver
