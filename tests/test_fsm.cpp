/// \file test_fsm.cpp
/// The protocol FSM model: builder validation (every well-formedness rule
/// of Definition 1 and Section 2.4), rule lookup, and the concrete
/// token-valued execution semantics shared by the enumerator and the
/// simulator.

#include <gtest/gtest.h>

#include "fsm/builder.hpp"
#include "fsm/concrete.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

/// A minimal correct two-state protocol used as a mutation base.
ProtocolBuilder mini_builder() {
  ProtocolBuilder b("Mini", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId d = b.state("D");
  b.exclusive(d).owner(d);
  b.rule(inv, StdOps::Read)
      .to(d)
      .observe(d, inv)
      .writeback_from(d)
      .load_memory();
  b.rule(d, StdOps::Read).to(d);
  b.rule(inv, StdOps::Write)
      .to(d)
      .invalidate_others()
      .writeback_from(d)
      .load_memory()
      .store();
  b.rule(d, StdOps::Write).to(d).store();
  b.rule(d, StdOps::Replace).to(inv).writeback_self();
  return b;
}

// ------------------------------------------------------------- validation

TEST(Builder, AcceptsAWellFormedProtocol) {
  const Protocol p = mini_builder().build();
  EXPECT_EQ(p.name(), "Mini");
  EXPECT_EQ(p.state_count(), 2u);
  EXPECT_EQ(p.op_count(), 3u);
}

TEST(Builder, RequiresAnInvalidState) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  b.state("A");
  b.state("B");
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, RejectsTwoInvalidStates) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  b.invalid_state("I");
  EXPECT_THROW((void)b.invalid_state("J"), SpecError);
}

TEST(Builder, RejectsDuplicateStateNames) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  b.invalid_state("I");
  EXPECT_THROW((void)b.state("I"), SpecError);
}

TEST(Builder, RejectsGuardsWithoutSharingDetection) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId d = b.state("D");
  b.rule(inv, StdOps::Read).when_shared().to(d).load_memory();
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, RejectsObservedTransitionsThatCreateCopies) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId d = b.state("D");
  b.rule(inv, StdOps::Read).to(d).observe(inv, d).load_memory();
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, RejectsMissingCoverage) {
  // No W rule for state D.
  ProtocolBuilder b("X", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId d = b.state("D");
  b.rule(inv, StdOps::Read).to(d).load_memory();
  b.rule(d, StdOps::Read).to(d);
  b.rule(inv, StdOps::Write).to(d).load_memory().store();
  b.rule(d, StdOps::Replace).to(inv).writeback_self();
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, RejectsOverlappingRules) {
  ProtocolBuilder b("X", CharacteristicKind::SharingDetection);
  const StateId inv = b.invalid_state("I");
  const StateId d = b.state("D");
  b.rule(inv, StdOps::Read).to(d).load_memory();          // guard Any
  b.rule(inv, StdOps::Read).when_shared().to(d).load_memory();  // overlaps
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, RejectsWritesThatDoNotStore) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId d = b.state("D");
  b.rule(inv, StdOps::Read).to(d).load_memory();
  b.rule(d, StdOps::Read).to(d);
  b.rule(inv, StdOps::Write).to(d).load_memory();  // missing store
  b.rule(d, StdOps::Write).to(d).store();
  b.rule(d, StdOps::Replace).to(inv).writeback_self();
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, RejectsReadsThatStore) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId d = b.state("D");
  b.rule(inv, StdOps::Read).to(d).load_memory().store();
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, RejectsTwoLoadsInOneRule) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId d = b.state("D");
  b.rule(inv, StdOps::Read).to(d).load_memory().load_prefer({d});
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, RejectsDisconnectedFsm) {
  // Definition 1: the per-cache FSM must be strongly connected. State T is
  // reachable but never left.
  ProtocolBuilder b("X", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId t = b.state("T");
  b.rule(inv, StdOps::Read).to(t).load_memory();
  b.rule(t, StdOps::Read).to(t);
  b.rule(inv, StdOps::Write).to(t).load_memory().store();
  b.rule(t, StdOps::Write).to(t).store();
  b.rule(t, StdOps::Replace).to(t);  // never returns to Invalid
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, RejectsExclusivityOnInvalidState) {
  ProtocolBuilder b = mini_builder();
  b.exclusive(StateId{0});  // state 0 is the Invalid state
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Builder, CustomOpsAreRegistered) {
  ProtocolBuilder b = mini_builder();
  const OpId flush = b.add_op("Flush", /*is_write=*/false);
  b.rule(1, flush).to(0).writeback_self();
  b.rule(0, flush).to(0);
  const Protocol p = std::move(b).build();
  EXPECT_EQ(p.op_count(), 4u);
  EXPECT_EQ(p.find_op("Flush"), flush);
}

// ------------------------------------------------------------ rule lookup

TEST(Protocol, FindRuleRespectsGuards) {
  const Protocol p = protocols::illinois();
  const StateId inv = *p.find_state("Invalid");
  const Rule* unshared = p.find_rule(inv, StdOps::Read, false);
  const Rule* shared = p.find_rule(inv, StdOps::Read, true);
  ASSERT_NE(unshared, nullptr);
  ASSERT_NE(shared, nullptr);
  EXPECT_NE(unshared, shared);
  EXPECT_EQ(unshared->self_next, *p.find_state("ValidExclusive"));
  EXPECT_EQ(shared->self_next, *p.find_state("Shared"));
  // Replacement of an Invalid block has no rule.
  EXPECT_EQ(p.find_rule(inv, StdOps::Replace, false), nullptr);
}

TEST(Protocol, DescribeListsRulesAndNotes) {
  const Protocol p = protocols::illinois();
  const std::string text = p.describe();
  EXPECT_NE(text.find("F=sharing-detection"), std::string::npos);
  EXPECT_NE(text.find("read hit"), std::string::npos);
  EXPECT_NE(text.find("Invalid --R[unshared]--> ValidExclusive"),
            std::string::npos);
}

// ----------------------------------------------------- concrete semantics

class ConcreteSemantics : public ::testing::Test {
 protected:
  const Protocol p = protocols::illinois();
  const StateId inv = *p.find_state("Invalid");
  const StateId ve = *p.find_state("ValidExclusive");
  const StateId sh = *p.find_state("Shared");
  const StateId d = *p.find_state("Dirty");
};

TEST_F(ConcreteSemantics, InitialBlockIsAllInvalidAndFresh) {
  const ConcreteBlock b = ConcreteBlock::initial(p, 3);
  EXPECT_EQ(b.cache_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(b.states[i], inv);
    EXPECT_EQ(cdata_of(p, b, i), CData::NoData);
  }
  EXPECT_EQ(mdata_of(b), MData::Fresh);
}

TEST_F(ConcreteSemantics, ReadMissLoadsValidExclusiveWhenAlone) {
  ConcreteBlock b = ConcreteBlock::initial(p, 3);
  const ApplyOutcome o = apply_op(p, b, 0, StdOps::Read);
  ASSERT_TRUE(o.applied);
  EXPECT_EQ(b.states[0], ve);
  EXPECT_EQ(cdata_of(p, b, 0), CData::Fresh);
  ASSERT_TRUE(o.supplier.has_value());
  EXPECT_TRUE(o.supplier->from_memory);
}

TEST_F(ConcreteSemantics, SecondReadSharesBothCopies) {
  ConcreteBlock b = ConcreteBlock::initial(p, 3);
  (void)apply_op(p, b, 0, StdOps::Read);
  const ApplyOutcome o = apply_op(p, b, 1, StdOps::Read);
  ASSERT_TRUE(o.applied);
  EXPECT_EQ(b.states[0], sh);
  EXPECT_EQ(b.states[1], sh);
  ASSERT_TRUE(o.supplier.has_value());
  EXPECT_FALSE(o.supplier->from_memory);
  EXPECT_EQ(o.supplier->cache, 0u);
}

TEST_F(ConcreteSemantics, WriteInvalidatesSharersAndAgesMemory) {
  ConcreteBlock b = ConcreteBlock::initial(p, 3);
  (void)apply_op(p, b, 0, StdOps::Read);
  (void)apply_op(p, b, 1, StdOps::Read);
  (void)apply_op(p, b, 0, StdOps::Write);
  EXPECT_EQ(b.states[0], d);
  EXPECT_EQ(b.states[1], inv);
  EXPECT_EQ(cdata_of(p, b, 0), CData::Fresh);
  EXPECT_EQ(cdata_of(p, b, 1), CData::NoData);
  EXPECT_EQ(mdata_of(b), MData::Obsolete);
}

TEST_F(ConcreteSemantics, DirtySupplierUpdatesMemoryOnRemoteRead) {
  ConcreteBlock b = ConcreteBlock::initial(p, 2);
  (void)apply_op(p, b, 0, StdOps::Write);  // cache 0 Dirty, memory stale
  EXPECT_EQ(mdata_of(b), MData::Obsolete);
  (void)apply_op(p, b, 1, StdOps::Read);   // dirty holder supplies + flush
  EXPECT_EQ(b.states[0], sh);
  EXPECT_EQ(b.states[1], sh);
  EXPECT_EQ(mdata_of(b), MData::Fresh);
  EXPECT_EQ(cdata_of(p, b, 1), CData::Fresh);
}

TEST_F(ConcreteSemantics, ReplacementWritesBackDirtyData) {
  ConcreteBlock b = ConcreteBlock::initial(p, 2);
  (void)apply_op(p, b, 0, StdOps::Write);
  (void)apply_op(p, b, 0, StdOps::Replace);
  EXPECT_EQ(b.states[0], inv);
  EXPECT_EQ(mdata_of(b), MData::Fresh);
}

TEST_F(ConcreteSemantics, ReplacementOfInvalidIsANoOp) {
  ConcreteBlock b = ConcreteBlock::initial(p, 2);
  const ApplyOutcome o = apply_op(p, b, 0, StdOps::Replace);
  EXPECT_FALSE(o.applied);
  EXPECT_EQ(b, ConcreteBlock::initial(p, 2));
}

TEST_F(ConcreteSemantics, SharingOfSeesOtherCopiesOnly) {
  ConcreteBlock b = ConcreteBlock::initial(p, 3);
  EXPECT_FALSE(sharing_of(p, b, 0));
  (void)apply_op(p, b, 0, StdOps::Read);
  EXPECT_FALSE(sharing_of(p, b, 0));  // own copy does not count
  EXPECT_TRUE(sharing_of(p, b, 1));
}

TEST_F(ConcreteSemantics, CandidateSuppliersFollowPriority) {
  ConcreteBlock b = ConcreteBlock::initial(p, 4);
  (void)apply_op(p, b, 0, StdOps::Read);
  (void)apply_op(p, b, 1, StdOps::Read);  // 0 and 1 Shared
  const Rule* rule = p.find_rule(inv, StdOps::Read, true);
  ASSERT_NE(rule, nullptr);
  const auto candidates = candidate_suppliers(p, b, 2, *rule);
  ASSERT_EQ(candidates.size(), 2u);  // both sharers, no dirty holder
  EXPECT_EQ(candidates[0], 0u);
  EXPECT_EQ(candidates[1], 1u);
}

TEST_F(ConcreteSemantics, StaleCopyDetection) {
  // Use the buggy no-invalidate protocol to manufacture a stale copy.
  const Protocol buggy = protocols::illinois_no_invalidate_on_write_hit();
  ConcreteBlock b = ConcreteBlock::initial(buggy, 2);
  (void)apply_op(buggy, b, 0, StdOps::Read);
  (void)apply_op(buggy, b, 1, StdOps::Read);
  (void)apply_op(buggy, b, 0, StdOps::Write);  // cache 1 keeps a stale copy
  EXPECT_TRUE(holds_stale_copy(buggy, b, 1));
  EXPECT_FALSE(holds_stale_copy(buggy, b, 0));
  EXPECT_NE(to_string(buggy, b).find("obsolete"), std::string::npos);
}

}  // namespace
}  // namespace ccver
