/// \file test_repetition.cpp
/// The repetition-operator algebra (Definition 6, Sections 3.2.1-3.2.2)
/// and the sharing-level arithmetic: interval semantics, aggregation rules,
/// the information ordering, and their algebraic properties.

#include <gtest/gtest.h>

#include "core/repetition.hpp"
#include "core/sharing_level.hpp"

namespace ccver {
namespace {

constexpr Rep kAllReps[] = {Rep::Zero, Rep::One, Rep::Plus, Rep::Star};

// ---------------------------------------------------------------- intervals

TEST(Repetition, IntervalSemantics) {
  EXPECT_EQ(rep_lo(Rep::Zero), 0u);
  EXPECT_EQ(rep_lo(Rep::One), 1u);
  EXPECT_EQ(rep_lo(Rep::Plus), 1u);
  EXPECT_EQ(rep_lo(Rep::Star), 0u);
  EXPECT_FALSE(rep_unbounded(Rep::Zero));
  EXPECT_FALSE(rep_unbounded(Rep::One));
  EXPECT_TRUE(rep_unbounded(Rep::Plus));
  EXPECT_TRUE(rep_unbounded(Rep::Star));
}

TEST(Repetition, FromInterval) {
  EXPECT_EQ(rep_from_interval(0, false), Rep::Zero);
  EXPECT_EQ(rep_from_interval(1, false), Rep::One);
  EXPECT_EQ(rep_from_interval(0, true), Rep::Star);
  EXPECT_EQ(rep_from_interval(1, true), Rep::Plus);
  // The paper coarsens "two or more" to Plus; the extra information lives
  // in the characteristic-function value (Section 4).
  EXPECT_EQ(rep_from_interval(2, false), Rep::Plus);
  EXPECT_EQ(rep_from_interval(5, true), Rep::Plus);
}

// ------------------------------------------------------ aggregation (rule 1)

TEST(Repetition, PaperAggregationRules) {
  // (q^0, q^r) == q^r
  for (const Rep r : kAllReps) {
    EXPECT_EQ(rep_merge(Rep::Zero, r), r);
  }
  // (q^*, q^*) == q^*
  EXPECT_EQ(rep_merge(Rep::Star, Rep::Star), Rep::Star);
  // (q, q^{1/+/*}) == q^+
  EXPECT_EQ(rep_merge(Rep::One, Rep::One), Rep::Plus);
  EXPECT_EQ(rep_merge(Rep::One, Rep::Plus), Rep::Plus);
  EXPECT_EQ(rep_merge(Rep::One, Rep::Star), Rep::Plus);
  // (q^+, q^*) == q^+
  EXPECT_EQ(rep_merge(Rep::Plus, Rep::Star), Rep::Plus);
  EXPECT_EQ(rep_merge(Rep::Plus, Rep::Plus), Rep::Plus);
}

TEST(Repetition, MergeIsCommutative) {
  for (const Rep a : kAllReps) {
    for (const Rep b : kAllReps) {
      EXPECT_EQ(rep_merge(a, b), rep_merge(b, a));
    }
  }
}

TEST(Repetition, MergeIsAssociative) {
  for (const Rep a : kAllReps) {
    for (const Rep b : kAllReps) {
      for (const Rep c : kAllReps) {
        EXPECT_EQ(rep_merge(rep_merge(a, b), c), rep_merge(a, rep_merge(b, c)));
      }
    }
  }
}

TEST(Repetition, ZeroIsMergeIdentity) {
  for (const Rep r : kAllReps) {
    EXPECT_EQ(rep_merge(r, Rep::Zero), r);
  }
}

// --------------------------------------------- information ordering (3.2.2)

TEST(Repetition, PaperOrdering) {
  // 1 < + < *, 0 < *.
  EXPECT_TRUE(rep_covered_by(Rep::One, Rep::Plus));
  EXPECT_TRUE(rep_covered_by(Rep::One, Rep::Star));
  EXPECT_TRUE(rep_covered_by(Rep::Plus, Rep::Star));
  EXPECT_TRUE(rep_covered_by(Rep::Zero, Rep::Star));
  // And the non-relations.
  EXPECT_FALSE(rep_covered_by(Rep::Plus, Rep::One));
  EXPECT_FALSE(rep_covered_by(Rep::Star, Rep::Plus));
  EXPECT_FALSE(rep_covered_by(Rep::Zero, Rep::One));
  EXPECT_FALSE(rep_covered_by(Rep::Zero, Rep::Plus));
  EXPECT_FALSE(rep_covered_by(Rep::One, Rep::Zero));
}

TEST(Repetition, OrderingIsReflexive) {
  for (const Rep r : kAllReps) {
    EXPECT_TRUE(rep_covered_by(r, r));
  }
}

TEST(Repetition, OrderingIsAntisymmetric) {
  for (const Rep a : kAllReps) {
    for (const Rep b : kAllReps) {
      if (rep_covered_by(a, b) && rep_covered_by(b, a)) {
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST(Repetition, OrderingIsTransitive) {
  for (const Rep a : kAllReps) {
    for (const Rep b : kAllReps) {
      for (const Rep c : kAllReps) {
        if (rep_covered_by(a, b) && rep_covered_by(b, c)) {
          EXPECT_TRUE(rep_covered_by(a, c));
        }
      }
    }
  }
}

TEST(Repetition, OrderingMatchesIntervalInclusion) {
  // r1 <= r2 iff every count admitted by r1 is admitted by r2 (checked on
  // a generous sample of counts).
  const auto admits = [](Rep r, unsigned n) {
    return n >= rep_lo(r) && (rep_unbounded(r) ? true : n <= rep_hi(r));
  };
  for (const Rep a : kAllReps) {
    for (const Rep b : kAllReps) {
      bool included = true;
      for (unsigned n = 0; n <= 8; ++n) {
        if (admits(a, n) && !admits(b, n)) included = false;
      }
      EXPECT_EQ(rep_covered_by(a, b), included)
          << rep_suffix(a) << " vs " << rep_suffix(b);
    }
  }
}

TEST(Repetition, Decrement) {
  EXPECT_EQ(rep_decrement(Rep::One), Rep::Zero);
  EXPECT_EQ(rep_decrement(Rep::Plus), Rep::Star);
  EXPECT_EQ(rep_decrement(Rep::Star), Rep::Star);
}

TEST(Repetition, DefiniteAndPossible) {
  EXPECT_TRUE(rep_definite(Rep::One));
  EXPECT_TRUE(rep_definite(Rep::Plus));
  EXPECT_FALSE(rep_definite(Rep::Star));
  EXPECT_FALSE(rep_definite(Rep::Zero));
  EXPECT_TRUE(rep_possible(Rep::Star));
  EXPECT_FALSE(rep_possible(Rep::Zero));
}

// ------------------------------------------------------------ sharing level

TEST(SharingLevelTest, CountCategories) {
  EXPECT_EQ(level_of_count(0), SharingLevel::None);
  EXPECT_EQ(level_of_count(1), SharingLevel::One);
  EXPECT_EQ(level_of_count(2), SharingLevel::Many);
  EXPECT_EQ(level_of_count(17), SharingLevel::Many);
}

TEST(SharingLevelTest, PlusOneIsExact) {
  EXPECT_EQ(level_plus_one(SharingLevel::None), SharingLevel::One);
  EXPECT_EQ(level_plus_one(SharingLevel::One), SharingLevel::Many);
  EXPECT_EQ(level_plus_one(SharingLevel::Many), SharingLevel::Many);
}

TEST(SharingLevelTest, MinusOneBranchesOnMany) {
  const auto from_one = level_minus_one(SharingLevel::One);
  ASSERT_EQ(from_one.size(), 1u);
  EXPECT_EQ(from_one[0], SharingLevel::None);

  const auto from_many = level_minus_one(SharingLevel::Many);
  ASSERT_EQ(from_many.size(), 2u);
  EXPECT_EQ(from_many[0], SharingLevel::One);
  EXPECT_EQ(from_many[1], SharingLevel::Many);
}

TEST(SharingLevelTest, SharingSeenByMatchesDefinition) {
  // f_i = "exists another cache with a valid copy" (Section 2.1).
  // A valid holder under level One is alone; under Many it has company.
  EXPECT_FALSE(sharing_seen_by(SharingLevel::One, /*self_valid=*/true));
  EXPECT_TRUE(sharing_seen_by(SharingLevel::Many, /*self_valid=*/true));
  // An invalid observer sees sharing whenever any copy exists.
  EXPECT_FALSE(sharing_seen_by(SharingLevel::None, /*self_valid=*/false));
  EXPECT_TRUE(sharing_seen_by(SharingLevel::One, /*self_valid=*/false));
  EXPECT_TRUE(sharing_seen_by(SharingLevel::Many, /*self_valid=*/false));
}

TEST(SharingLevelTest, AgreesWithExhaustiveCountSimulation) {
  // Category arithmetic must agree with integer arithmetic on every count
  // up to a bound: add one / remove one.
  for (unsigned n = 0; n <= 6; ++n) {
    EXPECT_EQ(level_plus_one(level_of_count(n)), level_of_count(n + 1));
    if (n >= 1) {
      const auto candidates = level_minus_one(level_of_count(n));
      bool found = false;
      for (const SharingLevel l : candidates) {
        if (l == level_of_count(n - 1)) found = true;
      }
      EXPECT_TRUE(found) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace ccver
