/// \file test_composite.cpp
/// Composite states (Definition 7): canonicalization (aggregation,
/// level-sharpening, feasibility, branching), structural covering
/// (Definition 8), containment (Definition 9) and its properties, and the
/// parse/to_string round trip the rest of the test suite leans on.

#include <gtest/gtest.h>

#include "core/composite_state.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

class CompositeStateTest : public ::testing::Test {
 protected:
  const Protocol p = protocols::illinois();
  const StateId inv = *p.find_state("Invalid");
  const StateId ve = *p.find_state("ValidExclusive");
  const StateId sh = *p.find_state("Shared");
  const StateId d = *p.find_state("Dirty");

  [[nodiscard]] CompositeState parse(std::string_view text) const {
    return CompositeState::parse(p, text);
  }
};

// --------------------------------------------------------------- initial

TEST_F(CompositeStateTest, InitialStateIsInvalidPlus) {
  const CompositeState s = CompositeState::initial(p);
  ASSERT_EQ(s.classes().size(), 1u);
  EXPECT_EQ(s.classes()[0].state, inv);
  EXPECT_EQ(s.classes()[0].rep, Rep::Plus);
  EXPECT_EQ(s.classes()[0].cdata, CData::NoData);
  EXPECT_EQ(s.mdata(), MData::Fresh);
  EXPECT_EQ(s.level(), SharingLevel::None);
  EXPECT_EQ(s, parse("(Inv+)"));
}

// ----------------------------------------------------------- parse formats

TEST_F(CompositeStateTest, ParseInfersLevelsFromStructure) {
  EXPECT_EQ(parse("(Inv+)").level(), SharingLevel::None);
  EXPECT_EQ(parse("(Dirty, Inv*)").level(), SharingLevel::One);
  EXPECT_EQ(parse("(Shared, Shared, Inv*)").level(), SharingLevel::Many);
}

TEST_F(CompositeStateTest, ParseAggregatesDuplicateClasses) {
  const CompositeState s = parse("(Shared, Shared, Inv*)");
  EXPECT_EQ(s.rep_of(sh, CData::Fresh), Rep::Plus);
  EXPECT_EQ(s.level(), SharingLevel::Many);
}

TEST_F(CompositeStateTest, ParseRequiresLevelWhenAmbiguous) {
  EXPECT_THROW((void)parse("(Shared+, Inv*)"), SpecError);
  EXPECT_EQ(parse("(Shared+, Inv*) level=many").level(), SharingLevel::Many);
}

TEST_F(CompositeStateTest, ParseReadsAttributes) {
  const CompositeState s = parse("(Dirty:obsolete, Inv*) mem=obsolete");
  EXPECT_EQ(s.rep_of(d, CData::Obsolete), Rep::One);
  EXPECT_EQ(s.rep_of(d, CData::Fresh), Rep::Zero);
  EXPECT_EQ(s.mdata(), MData::Obsolete);
}

TEST_F(CompositeStateTest, ParseAcceptsUniquePrefixes) {
  EXPECT_EQ(parse("(Val, Inv*)"), parse("(ValidExclusive, Invalid*)"));
  EXPECT_THROW((void)parse("(Frobnicate)"), SpecError);
}

TEST_F(CompositeStateTest, ToStringRoundTrips) {
  for (const std::string_view text :
       {"(Inv+)", "(ValidExclusive, Inv*)", "(Dirty, Inv*) mem=obsolete",
        "(Shared+, Inv*) level=many", "(Shared, Inv+)",
        "(Dirty:obsolete, Shared, Inv*) mem=obsolete level=many"}) {
    const CompositeState s = parse(text);
    EXPECT_EQ(CompositeState::parse(p, s.to_string(p)), s) << text;
  }
}

// -------------------------------------------------------- canonicalization

TEST_F(CompositeStateTest, CanonicalizeMergesSameKeyClasses) {
  CompositeState::ClassList raw;
  raw.push_back(ClassEntry{sh, Rep::One, CData::Fresh});
  raw.push_back(ClassEntry{inv, Rep::Star, CData::NoData});
  raw.push_back(ClassEntry{sh, Rep::One, CData::Fresh});
  const auto out = CompositeState::canonicalize(p, raw, MData::Fresh,
                                                SharingLevel::Many);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rep_of(sh, CData::Fresh), Rep::Plus);
}

TEST_F(CompositeStateTest, CanonicalizeDropsZeroClasses) {
  CompositeState::ClassList raw;
  raw.push_back(ClassEntry{sh, Rep::Zero, CData::Fresh});
  raw.push_back(ClassEntry{inv, Rep::Plus, CData::NoData});
  const auto out = CompositeState::canonicalize(p, raw, MData::Fresh,
                                                SharingLevel::None);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].classes().size(), 1u);
}

TEST_F(CompositeStateTest, CanonicalizeRejectsInfeasibleLevels) {
  CompositeState::ClassList raw;
  raw.push_back(ClassEntry{d, Rep::One, CData::Fresh});
  raw.push_back(ClassEntry{inv, Rep::Star, CData::NoData});
  // A definite Dirty copy contradicts level None; a single exact copy
  // contradicts level Many.
  EXPECT_TRUE(
      CompositeState::canonicalize(p, raw, MData::Fresh, SharingLevel::None)
          .empty());
  EXPECT_TRUE(
      CompositeState::canonicalize(p, raw, MData::Fresh, SharingLevel::Many)
          .empty());
  EXPECT_EQ(
      CompositeState::canonicalize(p, raw, MData::Fresh, SharingLevel::One)
          .size(),
      1u);
}

TEST_F(CompositeStateTest, CanonicalizeSharpensLoneStarUnderMany) {
  CompositeState::ClassList raw;
  raw.push_back(ClassEntry{sh, Rep::Star, CData::Fresh});
  raw.push_back(ClassEntry{inv, Rep::Plus, CData::NoData});
  const auto out = CompositeState::canonicalize(p, raw, MData::Fresh,
                                                SharingLevel::Many);
  ASSERT_EQ(out.size(), 1u);
  // The sole valid class must hold the >= 2 copies: Star sharpens to Plus.
  EXPECT_EQ(out[0].rep_of(sh, CData::Fresh), Rep::Plus);
}

TEST_F(CompositeStateTest, CanonicalizeSharpensPlusToOneUnderLevelOne) {
  CompositeState::ClassList raw;
  raw.push_back(ClassEntry{sh, Rep::Plus, CData::Fresh});
  raw.push_back(ClassEntry{inv, Rep::Star, CData::NoData});
  const auto out = CompositeState::canonicalize(p, raw, MData::Fresh,
                                                SharingLevel::One);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rep_of(sh, CData::Fresh), Rep::One);
}

TEST_F(CompositeStateTest, CanonicalizeDropsStarValidClassesUnderNone) {
  CompositeState::ClassList raw;
  raw.push_back(ClassEntry{sh, Rep::Star, CData::Fresh});
  raw.push_back(ClassEntry{inv, Rep::Plus, CData::NoData});
  const auto out = CompositeState::canonicalize(p, raw, MData::Fresh,
                                                SharingLevel::None);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rep_of(sh, CData::Fresh), Rep::Zero);
}

TEST_F(CompositeStateTest, CanonicalizeBranchesWhenLevelOneIsAmbiguous) {
  // Two flexible valid classes under level One: either could hold the
  // single copy.
  CompositeState::ClassList raw;
  raw.push_back(ClassEntry{sh, Rep::Star, CData::Fresh});
  raw.push_back(ClassEntry{ve, Rep::Star, CData::Fresh});
  raw.push_back(ClassEntry{inv, Rep::Plus, CData::NoData});
  const auto out = CompositeState::canonicalize(p, raw, MData::Fresh,
                                                SharingLevel::One);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0], out[1]);
  for (const CompositeState& s : out) {
    EXPECT_EQ(s.level(), SharingLevel::One);
    EXPECT_EQ(rep_lo(s.rep_of(sh, CData::Fresh)) +
                  rep_lo(s.rep_of(ve, CData::Fresh)),
              1u);
  }
}

// ------------------------------------------------- covering and containment

TEST_F(CompositeStateTest, PaperCoveringExample) {
  // Section 4: s4 = (Shared, Inv+) is structurally covered by
  // s3 = (Shared+, Inv*) but NOT contained (different F values).
  const CompositeState s3 = parse("(Shared+, Inv*) level=many");
  const CompositeState s4 = parse("(Shared, Inv+)");
  EXPECT_TRUE(s4.covered_by(s3));
  EXPECT_FALSE(s4.contained_in(s3));
  EXPECT_FALSE(s3.covered_by(s4));
}

TEST_F(CompositeStateTest, ContainmentRequiresEqualMData) {
  const CompositeState a = parse("(Dirty, Inv*)");
  const CompositeState b = parse("(Dirty, Inv*) mem=obsolete");
  EXPECT_TRUE(a.covered_by(b));
  EXPECT_FALSE(a.contained_in(b));
}

TEST_F(CompositeStateTest, ContainmentExamples) {
  EXPECT_TRUE(parse("(Dirty, Inv+) mem=obsolete")
                  .contained_in(parse("(Dirty, Inv*) mem=obsolete")));
  EXPECT_TRUE(parse("(Shared, Shared, Inv+)")
                  .contained_in(parse("(Shared+, Inv*) level=many")));
  EXPECT_FALSE(parse("(ValidExclusive, Inv*)")
                   .contained_in(parse("(Shared+, Inv*) level=many")));
  // Absent classes only match 0 or *: (Dirty) is not contained in
  // (Dirty, Shared) even though every declared class is covered.
  EXPECT_FALSE(
      parse("(Dirty, Shared, Inv*) mem=obsolete level=many")
          .contained_in(parse("(Dirty, Inv*) mem=obsolete")));
  EXPECT_FALSE(parse("(Dirty, Inv*) mem=obsolete")
                   .contained_in(
                       parse("(Dirty, Shared, Inv*) mem=obsolete level=many")));
}

TEST_F(CompositeStateTest, ContainmentIsReflexiveAndTransitive) {
  const std::vector<CompositeState> states = {
      parse("(Inv+)"),
      parse("(Dirty, Inv+) mem=obsolete"),
      parse("(Dirty, Inv*) mem=obsolete"),
      parse("(Shared, Inv+)"),
      parse("(Shared+, Inv*) level=many"),
      parse("(Shared, Shared, Inv*)"),
  };
  for (const CompositeState& s : states) {
    EXPECT_TRUE(s.contained_in(s));
  }
  for (const CompositeState& a : states) {
    for (const CompositeState& b : states) {
      for (const CompositeState& c : states) {
        if (a.contained_in(b) && b.contained_in(c)) {
          EXPECT_TRUE(a.contained_in(c));
        }
      }
    }
  }
}

TEST_F(CompositeStateTest, ContainmentIsAntisymmetric) {
  const std::vector<CompositeState> states = {
      parse("(Inv+)"),
      parse("(Dirty, Inv*) mem=obsolete"),
      parse("(Dirty, Inv+) mem=obsolete"),
      parse("(Shared+, Inv*) level=many"),
  };
  for (const CompositeState& a : states) {
    for (const CompositeState& b : states) {
      if (a.contained_in(b) && b.contained_in(a)) {
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST_F(CompositeStateTest, HashAgreesWithEquality) {
  const CompositeState a = parse("(Shared+, Inv*) level=many");
  const CompositeState b = parse("(Shared, Shared, Inv*)");
  const CompositeState c = parse("(Shared, Inv+)");
  EXPECT_EQ(a, b);  // aggregation normalizes both to the same state
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);
  EXPECT_NE(a.hash(), c.hash());  // not guaranteed in general, but stable here
}

TEST_F(CompositeStateTest, RepOfStateAggregatesAcrossData) {
  const CompositeState s =
      parse("(Dirty:obsolete, Dirty, Inv*) mem=obsolete level=many");
  EXPECT_EQ(s.rep_of(d, CData::Fresh), Rep::One);
  EXPECT_EQ(s.rep_of(d, CData::Obsolete), Rep::One);
  EXPECT_EQ(s.rep_of_state(d), Rep::Plus);
}

TEST_F(CompositeStateTest, DisplayOrderPutsValidClassesFirst) {
  const CompositeState s = parse("(Shared, Inv+)");
  const auto order = s.display_order(p);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(s.classes()[order[0]].state, sh);
  EXPECT_EQ(s.classes()[order[1]].state, inv);
  EXPECT_EQ(s.to_string(p), "(Shared, Invalid+) mem=fresh");
}

TEST_F(CompositeStateTest, ValidCountIntervalReflectsStructure) {
  const CountInterval none = valid_count_interval(p, parse("(Inv+)"));
  EXPECT_EQ(none.lo, 0u);
  EXPECT_FALSE(none.unbounded);

  const CountInterval many =
      valid_count_interval(p, parse("(Shared+, Inv*) level=many"));
  EXPECT_EQ(many.lo, 1u);
  EXPECT_TRUE(many.unbounded);
  EXPECT_TRUE(many.admits(3));
  EXPECT_FALSE(many.admits(0));
}

}  // namespace
}  // namespace ccver
