/// \file test_expansion_checkpoint.cpp
/// Survivability of symbolic Figure-3 runs: checkpoint round-trips,
/// interrupt -> resume byte-identity at every interruption point, strict
/// validation of untrusted on-disk state, budget-driven partial stops,
/// and fault injection on the write path.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/expansion.hpp"
#include "core/expansion_checkpoint.hpp"
#include "core/report_json.hpp"
#include "core/verifier.hpp"
#include "protocols/protocols.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

class ExpansionCheckpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: gtest_discover_tests runs each test as its own
    // ctest entry, so parallel ctest would race a shared directory.
    dir_ = fs::temp_directory_path() /
           (std::string("ccver_expansion_checkpoint_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Runs a visit-budget-interrupted expansion that writes a checkpoint.
  SymbolicCheckpoint make_checkpoint(const Protocol& p, std::size_t max_visits,
                                     const fs::path& path) {
    SymbolicExpander::Options opt;
    opt.max_visits = max_visits;
    opt.checkpoint_path = path.string();
    const ExpansionResult r = SymbolicExpander(p, opt).run();
    EXPECT_EQ(r.outcome, Outcome::Partial);
    EXPECT_EQ(r.stop_reason, StopReason::VisitBudget);
    EXPECT_TRUE(r.checkpoint_written);
    return load_symbolic_checkpoint(path);
  }

  /// Rewrites `path` with `line_no` (1-based) replaced by `text`, fixing
  /// up the checksum trailer so only the targeted corruption is seen.
  void corrupt_line(const fs::path& path, std::size_t line_no,
                    const std::string& text) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    lines.at(line_no - 1) = text;
    // Drop the old checksum line and recompute over the payload.
    lines.pop_back();
    std::string payload;
    for (const std::string& line : lines) payload += line + '\n';
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a, as checkpoint_io
    for (const char c : payload) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    std::ostringstream os;
    os << payload << "checksum " << std::hex << h << '\n';
    std::ofstream out(path, std::ios::trunc);
    out << os.str();
  }

  fs::path dir_;
};

TEST_F(ExpansionCheckpoint, SaveLoadRoundTripsEveryField) {
  const Protocol p = protocols::moesi_split();
  const fs::path path = dir_ / "moesi_split.ckpt";
  const SymbolicCheckpoint cp = make_checkpoint(p, 40, path);

  EXPECT_EQ(cp.protocol, p.name());
  EXPECT_EQ(cp.pruning, PruningMode::Containment);
  EXPECT_FALSE(cp.archive.empty());
  EXPECT_FALSE(cp.work.empty());

  const fs::path copy = dir_ / "copy.ckpt";
  save_symbolic_checkpoint(cp, copy);
  const SymbolicCheckpoint again = load_symbolic_checkpoint(copy);
  EXPECT_EQ(again.protocol, cp.protocol);
  EXPECT_EQ(again.fingerprint, cp.fingerprint);
  EXPECT_EQ(again.pruning, cp.pruning);
  EXPECT_EQ(again.stats.visits, cp.stats.visits);
  EXPECT_EQ(again.stats.expansions, cp.stats.expansions);
  EXPECT_EQ(again.stats.discarded_contained, cp.stats.discarded_contained);
  EXPECT_EQ(again.stats.evicted, cp.stats.evicted);
  EXPECT_EQ(again.stats.source_restarts, cp.stats.source_restarts);
  EXPECT_EQ(again.work, cp.work);
  EXPECT_EQ(again.visited, cp.visited);
  ASSERT_EQ(again.archive.size(), cp.archive.size());
  for (std::size_t i = 0; i < cp.archive.size(); ++i) {
    EXPECT_TRUE(again.archive[i].classes == cp.archive[i].classes);
    EXPECT_EQ(again.archive[i].mdata, cp.archive[i].mdata);
    EXPECT_EQ(again.archive[i].level, cp.archive[i].level);
    EXPECT_EQ(again.archive[i].parent, cp.archive[i].parent);
    EXPECT_TRUE(again.archive[i].via == cp.archive[i].via);
  }
}

TEST_F(ExpansionCheckpoint, ResumeIsByteIdenticalAtEveryInterruptionPoint) {
  const Protocol p = protocols::moesi_split();
  const Verifier full(p);
  const std::string uninterrupted = report_to_json(full.verify(), p);

  // MOESISplit takes 454 visits; interrupt at a spread of points,
  // including mid-stride ones that land inside an expansion step.
  for (const std::size_t cut : {1u, 23u, 100u, 300u, 400u}) {
    const fs::path path = dir_ / ("cut_" + std::to_string(cut) + ".ckpt");
    Verifier::Options part_opt;
    part_opt.max_visits = cut;
    part_opt.checkpoint_path = path.string();
    const VerificationReport partial = Verifier(p, part_opt).verify();
    ASSERT_EQ(partial.outcome, Outcome::Partial) << "cut=" << cut;
    ASSERT_TRUE(partial.checkpoint_written) << "cut=" << cut;

    const SymbolicCheckpoint cp = load_symbolic_checkpoint(path);
    Verifier::Options resume_opt;
    resume_opt.resume = &cp;
    const std::string resumed =
        report_to_json(Verifier(p, resume_opt).verify(), p);
    EXPECT_EQ(resumed, uninterrupted) << "cut=" << cut;
  }
}

TEST_F(ExpansionCheckpoint, ResumeAcrossEqualityPruningMode) {
  const Protocol p = protocols::illinois_split();
  Verifier::Options full_opt;
  full_opt.pruning = PruningMode::EqualityOnly;
  const std::string uninterrupted =
      report_to_json(Verifier(p, full_opt).verify(), p);

  const fs::path path = dir_ / "equality.ckpt";
  Verifier::Options part_opt = full_opt;
  part_opt.max_visits = 50;
  part_opt.checkpoint_path = path.string();
  ASSERT_EQ(Verifier(p, part_opt).verify().outcome, Outcome::Partial);

  const SymbolicCheckpoint cp = load_symbolic_checkpoint(path);
  EXPECT_EQ(cp.pruning, PruningMode::EqualityOnly);
  Verifier::Options resume_opt = full_opt;
  resume_opt.resume = &cp;
  EXPECT_EQ(report_to_json(Verifier(p, resume_opt).verify(), p),
            uninterrupted);
}

TEST_F(ExpansionCheckpoint, MemoryBudgetStopsTheRunAndResumes) {
  // Satellite regression: symbolic expansion must charge bytes, so a tiny
  // --mem-budget actually ends the run instead of being ignored.
  const Protocol p = protocols::moesi_split();
  const fs::path path = dir_ / "mem.ckpt";
  Budget budget{Budget::Limits{.max_bytes = 4000}};
  SymbolicExpander::Options opt;
  opt.budget = &budget;
  opt.checkpoint_path = path.string();
  const ExpansionResult r = SymbolicExpander(p, opt).run();
  ASSERT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.stop_reason, StopReason::MemoryBudget);
  EXPECT_GE(budget.bytes_charged(), 4000u);
  EXPECT_TRUE(r.checkpoint_written);

  // Resuming re-charges the restored working set, so the same budget
  // trips again immediately; an unlimited budget runs to completion.
  const SymbolicCheckpoint cp = load_symbolic_checkpoint(path);
  SymbolicExpander::Options resume_opt;
  resume_opt.resume = &cp;
  const ExpansionResult resumed = SymbolicExpander(p, resume_opt).run();
  EXPECT_EQ(resumed.outcome, Outcome::Complete);
  EXPECT_EQ(resumed.essential.size(), 27u);
}

TEST_F(ExpansionCheckpoint, PeriodicCheckpointsAreWrittenMidRun) {
  const Protocol p = protocols::moesi_split();
  const fs::path path = dir_ / "periodic.ckpt";
  SymbolicExpander::Options opt;
  opt.checkpoint_path = path.string();
  opt.checkpoint_interval_ms = 0;  // every expansion step
  const ExpansionResult r = SymbolicExpander(p, opt).run();
  EXPECT_EQ(r.outcome, Outcome::Complete);
  EXPECT_TRUE(r.checkpoint_written);
  // The last periodic checkpoint resumes to the same completed result.
  const SymbolicCheckpoint cp = load_symbolic_checkpoint(path);
  SymbolicExpander::Options resume_opt;
  resume_opt.resume = &cp;
  const ExpansionResult resumed = SymbolicExpander(p, resume_opt).run();
  EXPECT_EQ(resumed.essential.size(), r.essential.size());
}

TEST_F(ExpansionCheckpoint, RejectsProtocolAndPruningMismatches) {
  const fs::path path = dir_ / "illinois.ckpt";
  make_checkpoint(protocols::illinois(), 10, path);
  const SymbolicCheckpoint cp = load_symbolic_checkpoint(path);

  SymbolicExpander::Options opt;
  opt.resume = &cp;
  EXPECT_THROW((void)SymbolicExpander(protocols::dragon(), opt).run(),
               SpecError);

  SymbolicExpander::Options mode_opt;
  mode_opt.resume = &cp;
  mode_opt.pruning = PruningMode::EqualityOnly;
  EXPECT_THROW((void)SymbolicExpander(protocols::illinois(), mode_opt).run(),
               SpecError);
}

TEST_F(ExpansionCheckpoint, RejectsIncompatibleOptionCombinations) {
  SymbolicExpander::Options trace_opt;
  trace_opt.record_trace = true;
  trace_opt.checkpoint_path = (dir_ / "x.ckpt").string();
  EXPECT_THROW((void)SymbolicExpander(protocols::illinois(), trace_opt).run(),
               SpecError);

  SymbolicExpander::Options ref_opt;
  ref_opt.reference_engine = true;
  ref_opt.checkpoint_path = (dir_ / "y.ckpt").string();
  EXPECT_THROW((void)SymbolicExpander(protocols::illinois(), ref_opt).run(),
               SpecError);
}

TEST_F(ExpansionCheckpoint, LoaderRejectsCorruptContentWithLocatedErrors) {
  const Protocol p = protocols::illinois();
  const fs::path path = dir_ / "victim.ckpt";
  make_checkpoint(p, 10, path);

  const auto expect_rejected = [&](const std::string& needle) {
    try {
      (void)load_symbolic_checkpoint(path);
      FAIL() << "corrupt checkpoint accepted (wanted: " << needle << ")";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual: " << e.what();
    }
  };

  // Bit flip anywhere -> checksum mismatch.
  corrupt_line(path, 3, "protocol Illinois ");
  {
    // corrupt_line recomputes the checksum, so damage it directly.
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    const std::size_t pos = content.rfind("checksum ");
    content[pos + 9] = content[pos + 9] == '0' ? '1' : '0';
    std::ofstream(path, std::ios::trunc) << content;
  }
  expect_rejected("checksum");

  make_checkpoint(p, 10, path);
  corrupt_line(path, 2, "kind sideways");
  expect_rejected("kind");

  make_checkpoint(p, 10, path);
  corrupt_line(path, 5, "pruning sometimes");
  expect_rejected("pruning");

  // Archive entry with an out-of-range parent (forward reference).
  make_checkpoint(p, 10, path);
  {
    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    std::size_t archive_line = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].rfind("archive ", 0) == 0) archive_line = i + 2;
    }
    ASSERT_GT(archive_line, 0u);
    // Entry 1 (second archive line): point its parent at itself.
    std::istringstream is(lines[archive_line]);
    std::string classes, mdata, level, parent, rest;
    is >> classes >> mdata >> level >> parent;
    std::getline(is, rest);
    corrupt_line(path, archive_line + 1,
                 classes + " " + mdata + " " + level + " 7" + rest);
  }
  expect_rejected("parent");

  // Truncation: drop everything after the header.
  make_checkpoint(p, 10, path);
  {
    std::ifstream in(path);
    std::string keep;
    std::string line;
    for (int i = 0; i < 4 && std::getline(in, line); ++i) keep += line + '\n';
    in.close();
    std::ofstream(path, std::ios::trunc) << keep;
  }
  expect_rejected("");

  // An enumeration checkpoint (no `kind` line) must be pointed elsewhere.
  make_checkpoint(p, 10, path);
  {
    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    in.close();
    lines.erase(lines.begin() + 1);  // drop "kind symbolic"
    std::string payload;
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) payload += lines[i] + '\n';
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : payload) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    std::ostringstream os;
    os << payload << "checksum " << std::hex << h << '\n';
    std::ofstream(path, std::ios::trunc) << os.str();
  }
  expect_rejected("enumeration checkpoint");
}

TEST_F(ExpansionCheckpoint, TransientWriteFaultsAreRetried) {
  const Protocol p = protocols::moesi_split();
  const fs::path path = dir_ / "retry.ckpt";
  ScopedFailpoints fp("checkpoint.short_write=2");
  SymbolicExpander::Options opt;
  opt.max_visits = 40;
  opt.checkpoint_path = path.string();
  const ExpansionResult r = SymbolicExpander(p, opt).run();
  EXPECT_TRUE(r.checkpoint_written);
  // The file written after retries must load clean.
  const SymbolicCheckpoint cp = load_symbolic_checkpoint(path);
  EXPECT_EQ(cp.protocol, p.name());
}

TEST_F(ExpansionCheckpoint, ScratchAllocationFaultSurfacesAsBadAlloc) {
  ScopedFailpoints fp("expand.scratch_alloc");
  SymbolicExpander::Options opt;
  EXPECT_THROW((void)SymbolicExpander(protocols::illinois(), opt).run(),
               std::bad_alloc);
}

}  // namespace
}  // namespace ccver
