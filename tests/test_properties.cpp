/// \file test_properties.cpp
/// Randomized property tests over the symbolic machinery (seeded and
/// deterministic):
///  * canonicalization is idempotent on its own output;
///  * structural covering agrees with concrete-family inclusion;
///  * the abstraction commutes: a concrete step followed by abstraction
///    lands inside the symbolic successors of any covering composite state
///    (the semantic core of Theorem 1);
///  * Lemma 2 monotonicity over randomly drawn contained pairs;
///  * the spec parser never crashes on mutated input.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/expansion.hpp"
#include "enumeration/coverage.hpp"
#include "enumeration/enumerator.hpp"
#include "protocols/protocols.hpp"
#include "sim/trace.hpp"
#include "spec/parser.hpp"
#include "spec/writer.hpp"
#include "util/rng.hpp"

namespace ccver {
namespace {

/// Draws a random raw class list + attributes; most combinations are
/// infeasible or non-canonical, which is exactly what canonicalize must
/// handle.
CompositeState::ClassList random_raw(const Protocol& p, Rng& rng) {
  CompositeState::ClassList raw;
  const std::size_t classes = 1 + rng.below(4);
  for (std::size_t i = 0; i < classes; ++i) {
    const auto state = static_cast<StateId>(rng.below(p.state_count()));
    const auto rep = static_cast<Rep>(1 + rng.below(3));  // One/Plus/Star
    const CData cdata = p.is_valid_state(state)
                            ? (rng.chance(0.8) ? CData::Fresh
                                               : CData::Obsolete)
                            : CData::NoData;
    raw.push_back(ClassEntry{state, rep, cdata});
  }
  return raw;
}

SharingLevel random_level(Rng& rng) {
  return static_cast<SharingLevel>(rng.below(3));
}

TEST(Properties, CanonicalizationIsIdempotent) {
  const Protocol p = protocols::dragon();
  Rng rng(2026);
  std::size_t produced = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto raw = random_raw(p, rng);
    const MData mdata = rng.chance(0.5) ? MData::Fresh : MData::Obsolete;
    const SharingLevel level = random_level(rng);
    for (const CompositeState& s :
         CompositeState::canonicalize(p, raw, mdata, level)) {
      ++produced;
      const auto again =
          CompositeState::canonicalize(p, s.classes(), s.mdata(), s.level());
      ASSERT_EQ(again.size(), 1u) << s.to_string(p);
      EXPECT_EQ(again[0], s) << s.to_string(p);
    }
  }
  EXPECT_GT(produced, 500u);  // the generator must exercise the happy path
}

/// Draws a concrete population consistent with a canonical composite state
/// (bounded instance counts for unbounded classes), or nullopt when the
/// level's copy count cannot be met within the bound.
std::optional<EnumKey> random_instance(const Protocol& p,
                                       const CompositeState& s, Rng& rng,
                                       std::size_t max_extra = 3) {
  std::vector<std::uint8_t> cells;
  unsigned valid = 0;
  for (const ClassEntry& c : s.classes()) {
    unsigned count = rep_lo(c.rep);
    if (rep_unbounded(c.rep)) {
      count += static_cast<unsigned>(rng.below(max_extra + 1));
    }
    for (unsigned k = 0; k < count; ++k) {
      cells.push_back(static_cast<std::uint8_t>(
          (c.state << 2) | static_cast<std::uint8_t>(c.cdata)));
      if (p.is_valid_state(c.state)) ++valid;
    }
  }
  if (level_of_count(valid) != s.level()) return std::nullopt;
  if (cells.empty() || cells.size() > kMaxCaches) return std::nullopt;
  std::sort(cells.begin(), cells.end());
  return EnumKey::pack(cells.data(), cells.size(),
                       static_cast<std::uint8_t>(s.mdata()));
}

TEST(Properties, InstancesOfAStateAreCoveredByIt) {
  const Protocol p = protocols::moesi();
  Rng rng(7);
  const ExpansionResult r = SymbolicExpander(p).run();
  std::size_t checked = 0;
  for (const CompositeState& s : r.essential) {
    for (int trial = 0; trial < 200; ++trial) {
      const auto key = random_instance(p, s, rng);
      if (!key.has_value()) continue;
      ++checked;
      EXPECT_TRUE(covers_concrete(p, s, *key))
          << s.to_string(p) << " does not cover " << to_string(p, *key);
    }
  }
  EXPECT_GT(checked, 200u);
}

TEST(Properties, CoveringImpliesFamilyInclusion) {
  // If S1 is contained in S2, every concrete instance of S1 must be
  // covered by S2 as well.
  const Protocol p = protocols::dragon();
  Rng rng(17);

  // Pool of canonical states: the equality-mode expansion visits more
  // distinct states than the essential run.
  SymbolicExpander::Options opt;
  opt.pruning = PruningMode::EqualityOnly;
  const ExpansionResult r = SymbolicExpander(p, opt).run();

  std::size_t contained_pairs = 0;
  for (const CompositeState& s1 : r.essential) {
    for (const CompositeState& s2 : r.essential) {
      if (!(s1.contained_in(s2)) || s1 == s2) continue;
      ++contained_pairs;
      for (int trial = 0; trial < 50; ++trial) {
        const auto key = random_instance(p, s1, rng);
        if (!key.has_value()) continue;
        EXPECT_TRUE(covers_concrete(p, s2, *key))
            << to_string(p, *key) << " in " << s1.to_string(p)
            << " escapes " << s2.to_string(p);
      }
    }
  }
  EXPECT_GT(contained_pairs, 0u);
}

/// The semantic core of Theorem 1: take any reachable concrete state, any
/// covering composite state, and any concrete transition; the abstracted
/// result must be covered by the source or one of its symbolic successors.
class AbstractionCommutes : public ::testing::TestWithParam<std::string> {};

TEST_P(AbstractionCommutes, ConcreteStepsStayInsideSymbolicSuccessors) {
  const Protocol p = protocols::by_name(GetParam());
  const ExpansionResult symbolic = SymbolicExpander(p).run();

  Enumerator::Options eopt;
  eopt.n_caches = 4;
  eopt.keep_states = true;
  const EnumerationResult concrete = Enumerator(p, eopt).run();

  for (const EnumKey& key : concrete.reachable) {
    // Find one covering essential state.
    const CompositeState* covering = nullptr;
    for (const CompositeState& s : symbolic.essential) {
      if (covers_concrete(p, s, key)) {
        covering = &s;
        break;
      }
    }
    ASSERT_NE(covering, nullptr) << to_string(p, key);

    const auto symbolic_succ = successors(p, *covering);
    for (const EnumKey& next :
         concrete_successors(p, key, Equivalence::Counting)) {
      const bool inside =
          covers_concrete(p, *covering, next) ||
          std::any_of(symbolic_succ.begin(), symbolic_succ.end(),
                      [&](const Successor& s) {
                        return covers_concrete(p, s.state, next);
                      });
      EXPECT_TRUE(inside)
          << "concrete step " << to_string(p, key) << " -> "
          << to_string(p, next) << " escapes symbolic successors of "
          << covering->to_string(p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, AbstractionCommutes,
    ::testing::Values("WriteOnce", "Synapse", "Berkeley", "Illinois",
                      "Firefly", "Dragon", "MSI", "MESI", "MOESI"),
    [](const ::testing::TestParamInfo<std::string>& i) { return i.param; });

TEST(Properties, MonotonicityOverRandomContainedPairs) {
  // Lemma 2 over every contained pair drawn from the equality-mode pool.
  for (const char* name : {"Illinois", "Dragon", "Berkeley"}) {
    const Protocol p = protocols::by_name(name);
    SymbolicExpander::Options opt;
    opt.pruning = PruningMode::EqualityOnly;
    const ExpansionResult r = SymbolicExpander(p, opt).run();

    for (const CompositeState& s1 : r.essential) {
      for (const CompositeState& s2 : r.essential) {
        if (s1 == s2 || !s1.contained_in(s2)) continue;
        const auto succ2 = successors(p, s2);
        for (const Successor& a : successors(p, s1)) {
          const bool covered =
              a.state.contained_in(s2) ||
              std::any_of(succ2.begin(), succ2.end(),
                          [&a](const Successor& b) {
                            return a.state.contained_in(b.state);
                          });
          EXPECT_TRUE(covered)
              << name << ": successor " << a.state.to_string(p) << " of "
              << s1.to_string(p) << " escapes " << s2.to_string(p);
        }
      }
    }
  }
}

// --------------------------------------------------------- parser fuzzing

TEST(Properties, ParserSurvivesMutatedSpecs) {
  // Token-level mutations of a valid spec must either parse or raise
  // SpecError -- never crash, never raise InternalError.
  const std::string source = to_spec(protocols::illinois());
  Rng rng(99);
  std::size_t parsed_ok = 0;
  std::size_t rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = source;
    const std::size_t edits = 1 + rng.below(3);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(4)) {
        case 0:  // delete a span
          mutated.erase(pos, 1 + rng.below(8));
          break;
        case 1:  // duplicate a span
          mutated.insert(pos, mutated.substr(pos, 1 + rng.below(8)));
          break;
        case 2:  // garble a character
          mutated[pos] = static_cast<char>('!' + rng.below(90));
          break;
        default:  // inject a random keyword
          mutated.insert(pos, " store ");
          break;
      }
    }
    try {
      (void)parse_protocol(mutated);
      ++parsed_ok;
    } catch (const SpecError&) {
      ++rejected;
    }
    // InternalError or a crash fails the test by escaping the catch.
  }
  EXPECT_EQ(parsed_ok + rejected, 500u);
  EXPECT_GT(rejected, 100u);  // mutations usually break something
}

TEST(Properties, TraceGenerationIsPermutationStableUnderBlockRelabeling) {
  // Blocks are interchangeable: relabeling block ids in the config space
  // must not change aggregate trace statistics (writes per block modulo
  // the mapping). A cheap sanity property on the generator.
  TraceConfig cfg;
  cfg.n_cpus = 4;
  cfg.n_blocks = 8;
  cfg.length = 5'000;
  cfg.seed = 5;
  const auto trace = generate_trace(cfg);
  std::size_t writes = 0;
  for (const TraceEvent& e : trace) {
    EXPECT_LT(e.cpu, cfg.n_cpus);
    EXPECT_LT(e.block, cfg.n_blocks);
    if (e.op == StdOps::Write) ++writes;
  }
  EXPECT_NEAR(static_cast<double>(writes) / 5'000.0, cfg.write_fraction,
              0.05);
}

}  // namespace
}  // namespace ccver
