/// \file test_progress.cpp
/// The progress-graph facility (core/progress_graph.hpp) and the iterative
/// Tarjan SCC routine (core/scc.hpp) that back the layer-4 lint checks:
/// transient/completing classification, full labeled graph materialization,
/// determinism, budget degradation, and component numbering order.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/progress_graph.hpp"
#include "core/repetition.hpp"
#include "core/scc.hpp"
#include "protocols/protocols.hpp"
#include "util/budget.hpp"
#include "util/metrics.hpp"

namespace ccver {
namespace {

using Edges = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

// ------------------------------------------------------------------ scc

TEST(Scc, CycleCollapsesToOneComponent) {
  const SccResult r =
      strongly_connected_components(3, Edges{{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
}

TEST(Scc, ChainYieldsReverseTopologicalNumbering) {
  const Edges edges{{0, 1}, {1, 2}, {2, 3}};
  const SccResult r = strongly_connected_components(4, edges);
  EXPECT_EQ(r.count, 4u);
  // Every cross edge points from a higher component id to a lower one;
  // the livelock check relies on this to find terminal components.
  for (const auto& [u, v] : edges) {
    EXPECT_GT(r.component[u], r.component[v]) << u << "->" << v;
  }
}

TEST(Scc, SelfLoopAndIsolatedNodeAreBothSingletons) {
  const SccResult r = strongly_connected_components(2, Edges{{0, 0}});
  EXPECT_EQ(r.count, 2u);
  EXPECT_NE(r.component[0], r.component[1]);
}

TEST(Scc, MixedGraphSeparatesCycleFromTail) {
  // 0 <-> 1 form a component; 2 -> 0 and 3 alone are singletons.
  const SccResult r =
      strongly_connected_components(4, Edges{{0, 1}, {1, 0}, {2, 0}});
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_GT(r.component[2], r.component[0]);
}

TEST(Scc, DeepChainDoesNotOverflowTheStack) {
  // The implementation must be iterative: composite graphs reach
  // hundreds of thousands of nodes in one DFS.
  constexpr std::uint32_t kNodes = 200'000;
  Edges edges;
  edges.reserve(kNodes - 1);
  for (std::uint32_t i = 0; i + 1 < kNodes; ++i) edges.push_back({i, i + 1});
  const SccResult r = strongly_connected_components(kNodes, edges);
  EXPECT_EQ(r.count, kNodes);
}

// --------------------------------------------------------- transient info

TEST(Progress, TransientInfoClassifiesSplitProtocolStates) {
  const Protocol p = protocols::illinois_split();
  const TransientInfo info(p);
  EXPECT_TRUE(info.transient_state[*p.find_state("ReadPending")]);
  EXPECT_TRUE(info.transient_state[*p.find_state("WritePending")]);
  EXPECT_FALSE(info.transient_state[*p.find_state("Shared")]);
  EXPECT_FALSE(info.transient_state[*p.find_state("Dirty")]);
  for (std::size_t i = 0; i < p.rules().size(); ++i) {
    const Rule& r = p.rules()[i];
    const bool expect = info.transient_state[r.from] && !r.is_stall &&
                        r.self_next != r.from;
    EXPECT_EQ(info.completing_rule[i], expect) << "rule " << i;
  }
}

TEST(Progress, AtomicProtocolHasNoTransients) {
  const Protocol p = protocols::msi();
  const TransientInfo info(p);
  for (std::size_t s = 0; s < info.transient_state.size(); ++s) {
    EXPECT_FALSE(info.transient_state[s]) << s;
  }
  const ProgressGraph g = build_progress_graph(p);
  for (std::size_t v = 0; v < g.nodes.size(); ++v) {
    EXPECT_FALSE(g.pending[v]) << v;
  }
}

// ----------------------------------------------------------- graph build

TEST(Progress, GraphIsCompleteAndWellFormed) {
  const Protocol p = protocols::illinois_split();
  const ProgressGraph g = build_progress_graph(p);
  EXPECT_TRUE(g.complete());
  EXPECT_EQ(g.stop_reason, StopReason::None);
  ASSERT_FALSE(g.nodes.empty());
  EXPECT_EQ(g.pending.size(), g.nodes.size());
  EXPECT_EQ(g.expansions, g.nodes.size());
  for (const ProgressEdge& e : g.edges) {
    ASSERT_LT(e.from, g.nodes.size());
    ASSERT_LT(e.to, g.nodes.size());
    ASSERT_LT(e.rule_index, p.rules().size());
    // A stall leaves every cache state in place, but the symbolic
    // successor may still be a refinement of the source node (guard
    // branching), so only the rule flag is asserted here.
    EXPECT_EQ(e.is_stall, p.rules()[e.rule_index].is_stall);
  }
}

TEST(Progress, PendingFlagsTrackDefiniteTransientClasses) {
  const Protocol p = protocols::illinois_split();
  const TransientInfo info(p);
  const ProgressGraph g = build_progress_graph(p);
  std::size_t pending_nodes = 0;
  for (std::size_t v = 0; v < g.nodes.size(); ++v) {
    bool expect = false;
    for (const ClassEntry& c : g.nodes[v].classes()) {
      expect = expect || (info.transient_state[c.state] && rep_definite(c.rep));
    }
    EXPECT_EQ(g.pending[v], expect) << g.nodes[v].to_string(p);
    pending_nodes += g.pending[v] ? 1 : 0;
  }
  EXPECT_GT(pending_nodes, 0u);
}

TEST(Progress, CompletingEdgesExistAndMatchTheRuleTable) {
  const Protocol p = protocols::illinois_split();
  const TransientInfo info(p);
  const ProgressGraph g = build_progress_graph(p);
  std::size_t completing = 0;
  for (const ProgressEdge& e : g.edges) {
    EXPECT_EQ(e.completes, bool(info.completing_rule[e.rule_index]));
    completing += e.completes ? 1 : 0;
  }
  // Both AckR fills and the AckW retirement fire somewhere.
  EXPECT_GT(completing, 0u);
}

TEST(Progress, BuildIsDeterministicAcrossRuns) {
  const Protocol p = protocols::moesi_split();
  const ProgressGraph a = build_progress_graph(p);
  const ProgressGraph b = build_progress_graph(p);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t v = 0; v < a.nodes.size(); ++v) {
    EXPECT_EQ(a.nodes[v], b.nodes[v]) << v;
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].from, b.edges[i].from) << i;
    EXPECT_EQ(a.edges[i].to, b.edges[i].to) << i;
    EXPECT_EQ(a.edges[i].rule_index, b.edges[i].rule_index) << i;
  }
}

TEST(Progress, NodeCeilingDegradesToPartial) {
  ProgressGraphOptions options;
  options.max_nodes = 2;
  const ProgressGraph g =
      build_progress_graph(protocols::illinois_split(), options);
  EXPECT_FALSE(g.complete());
  EXPECT_EQ(g.stop_reason, StopReason::VisitBudget);
  EXPECT_LE(g.nodes.size(), 2u + 1u);  // the crossing admission may land
}

TEST(Progress, StateBudgetDegradesToPartial) {
  Budget budget(Budget::Limits{.deadline_ns = 0, .max_states = 1});
  ProgressGraphOptions options;
  options.budget = &budget;
  const ProgressGraph g =
      build_progress_graph(protocols::illinois_split(), options);
  EXPECT_FALSE(g.complete());
  EXPECT_EQ(g.stop_reason, StopReason::StateBudget);
}

TEST(Progress, MetricsRecordNodesEdgesAndExpansions) {
  MetricsRegistry metrics;
  ProgressGraphOptions options;
  options.metrics = &metrics;
  const ProgressGraph g =
      build_progress_graph(protocols::illinois_split(), options);
  const MetricsSnapshot snap = metrics.snapshot();
  ASSERT_TRUE(snap.counters.contains("progress.nodes"));
  EXPECT_EQ(snap.counters.at("progress.nodes"), g.nodes.size());
  ASSERT_TRUE(snap.counters.contains("progress.edges"));
  EXPECT_EQ(snap.counters.at("progress.edges"), g.edges.size());
  ASSERT_TRUE(snap.counters.contains("progress.expansions"));
  EXPECT_EQ(snap.counters.at("progress.expansions"), g.expansions);
}

}  // namespace
}  // namespace ccver
