/// \file test_checkpoint.cpp
/// Checkpoint persistence: round-trips, atomicity under injected write
/// faults, and located structured errors for every corrupt-file shape in
/// the robustness corpus (tests/fixtures/robustness/).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "enumeration/checkpoint.hpp"
#include "enumeration/enumerator.hpp"
#include "protocols/protocols.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

fs::path corpus_path(const std::string& name) {
  return fs::path(CCVER_SOURCE_DIR) / "tests" / "fixtures" / "robustness" /
         name;
}

class Checkpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "ccver_checkpoint_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Runs a budget-interrupted enumeration that writes a checkpoint.
  EnumCheckpoint make_checkpoint(const Protocol& p, std::size_t max_states,
                                 const fs::path& path) {
    Budget budget{Budget::Limits{.max_states = max_states}};
    Enumerator::Options opt;
    opt.n_caches = 4;
    opt.budget = &budget;
    opt.checkpoint_path = path.string();
    const EnumerationResult r = Enumerator(p, opt).run();
    EXPECT_EQ(r.outcome, Outcome::Partial);
    EXPECT_TRUE(r.checkpoint_written);
    return load_checkpoint(path);
  }

  fs::path dir_;
};

TEST_F(Checkpoint, SaveLoadRoundTripsEveryField) {
  const Protocol p = protocols::moesi_split();
  const fs::path path = dir_ / "moesi_split.ckpt";
  const EnumCheckpoint cp = make_checkpoint(p, 40, path);

  EXPECT_EQ(cp.protocol, p.name());
  EXPECT_EQ(cp.fingerprint, protocol_fingerprint(p));
  EXPECT_EQ(cp.n_caches, 4u);
  EXPECT_FALSE(cp.visited.empty());

  // Re-save what we loaded; the second generation must load back equal.
  const fs::path copy = dir_ / "copy.ckpt";
  save_checkpoint(cp, copy);
  const EnumCheckpoint again = load_checkpoint(copy);
  EXPECT_EQ(again.protocol, cp.protocol);
  EXPECT_EQ(again.fingerprint, cp.fingerprint);
  EXPECT_EQ(again.mid_level, cp.mid_level);
  EXPECT_EQ(again.levels, cp.levels);
  EXPECT_EQ(again.visits, cp.visits);
  EXPECT_EQ(again.symmetry_skips, cp.symmetry_skips);
  EXPECT_EQ(again.expansions, cp.expansions);
  EXPECT_EQ(again.visited, cp.visited);
  EXPECT_EQ(again.frontier, cp.frontier);
  EXPECT_EQ(again.next, cp.next);
}

TEST_F(Checkpoint, SaveIsAtomicNoTempFileLeftBehind) {
  const Protocol p = protocols::illinois();
  const fs::path path = dir_ / "atomic.ckpt";
  (void)make_checkpoint(p, 4, path);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
}

TEST_F(Checkpoint, ShortWriteIsRetriedAndSucceeds) {
  const Protocol p = protocols::illinois();
  const fs::path path = dir_ / "retry.ckpt";
  ScopedFailpoints fp("checkpoint.short_write=1");  // first attempt fails
  MetricsRegistry metrics;
  Budget budget{Budget::Limits{.max_states = 4}};
  Enumerator::Options opt;
  opt.n_caches = 4;
  opt.budget = &budget;
  opt.checkpoint_path = path.string();
  opt.metrics = &metrics;
  const EnumerationResult r = Enumerator(p, opt).run();
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_TRUE(r.checkpoint_written);
  // The retry wrote a fully valid file.
  EXPECT_NO_THROW((void)load_checkpoint(path));
  const MetricsSnapshot snap = metrics.snapshot();
  ASSERT_TRUE(snap.counters.contains("checkpoint.retries"));
  EXPECT_GE(snap.counters.at("checkpoint.retries"), 1u);
}

TEST_F(Checkpoint, PersistentWriteFaultThrowsIoErrorAndKeepsOldFile) {
  const Protocol p = protocols::illinois();
  const fs::path path = dir_ / "keep.ckpt";
  const EnumCheckpoint cp = make_checkpoint(p, 4, path);
  const auto old_size = fs::file_size(path);

  // Every further rename fails: the save must throw, and the previous
  // checkpoint generation must survive untouched (atomicity).
  ScopedFailpoints fp("checkpoint.rename_fail");
  EXPECT_THROW(save_checkpoint(cp, path), IoError);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(fs::file_size(path), old_size);
  EXPECT_NO_THROW((void)load_checkpoint(path));
}

TEST_F(Checkpoint, MissingFileThrowsIoError) {
  EXPECT_THROW((void)load_checkpoint(dir_ / "nonexistent.ckpt"), IoError);
}

// -- corrupt-file corpus ------------------------------------------------
// Each fixture is a deliberately damaged v1 checkpoint; loading must fail
// with a located IoError (`<path>:<line>: detail`), never crash.

struct CorpusCase {
  const char* file;
  const char* expect;  ///< substring of the diagnostic
};

class CorruptCorpus : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(CorruptCorpus, LoadFailsWithLocatedIoError) {
  const CorpusCase& c = GetParam();
  const fs::path path = corpus_path(c.file);
  ASSERT_TRUE(fs::exists(path)) << path;
  try {
    (void)load_checkpoint(path);
    FAIL() << c.file << ": expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    // Located: names the file and carries a line number.
    EXPECT_NE(what.find(c.file), std::string::npos) << what;
    EXPECT_NE(what.find(':'), std::string::npos) << what;
    EXPECT_NE(what.find(c.expect), std::string::npos) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Robustness, CorruptCorpus,
    ::testing::Values(
        CorpusCase{"truncated.ckpt", "truncated"},
        CorpusCase{"bad_magic.ckpt", "magic"},
        CorpusCase{"bad_version.ckpt", "version"},
        CorpusCase{"bad_checksum.ckpt", "checksum"},
        CorpusCase{"bad_count.ckpt", ""},
        CorpusCase{"bad_key.ckpt", ""},
        CorpusCase{"trailing_garbage.ckpt", ""}),
    [](const ::testing::TestParamInfo<CorpusCase>& info) {
      std::string name = info.param.file;
      name.resize(name.find('.'));
      return name;
    });

}  // namespace
}  // namespace ccver
