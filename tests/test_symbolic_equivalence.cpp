/// \file test_symbolic_equivalence.cpp
/// The indexed symbolic engine against its executable specification: the
/// original linear-scan loop, kept verbatim behind
/// `Options::reference_engine`. For every library protocol and every
/// shipped .ccp spec, in both pruning modes, the two engines must produce
/// byte-identical JSON verification reports -- same essential states in
/// the same order, same statistics, same dispositions, same graph.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/report_json.hpp"
#include "core/verifier.hpp"
#include "protocols/protocols.hpp"
#include "spec/loader.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

std::string report_json(const Protocol& p, PruningMode mode, bool reference) {
  Verifier::Options opt;
  opt.pruning = mode;
  opt.reference_engine = reference;
  const Verifier v(p, opt);
  return report_to_json(v.verify(), p);
}

void expect_engines_agree(const Protocol& p) {
  for (const PruningMode mode :
       {PruningMode::Containment, PruningMode::EqualityOnly}) {
    const std::string ref = report_json(p, mode, /*reference=*/true);
    const std::string indexed = report_json(p, mode, /*reference=*/false);
    EXPECT_EQ(ref, indexed)
        << p.name() << " diverges in "
        << (mode == PruningMode::Containment ? "containment" : "equality-only")
        << " pruning mode";
  }
}

TEST(SymbolicEquivalence, EveryLibraryProtocolBothPruningModes) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    expect_engines_agree(np.factory());
  }
}

TEST(SymbolicEquivalence, EveryShippedSpecFile) {
  const fs::path specs = fs::path(CCVER_SOURCE_DIR) / "specs";
  std::size_t checked = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(specs)) {
    if (e.path().extension() != ".ccp") continue;
    expect_engines_agree(load_protocol_file(e.path()));
    ++checked;
  }
  EXPECT_GE(checked, 11u);
}

TEST(SymbolicEquivalence, TracesMatchOnTheReferenceEngine) {
  // The visit trace (dispositions in generation order) is the
  // finest-grained observable; both engines must record the same one.
  const Protocol p = protocols::moesi_split();
  for (const PruningMode mode :
       {PruningMode::Containment, PruningMode::EqualityOnly}) {
    SymbolicExpander::Options ref_opt;
    ref_opt.record_trace = true;
    ref_opt.pruning = mode;
    ref_opt.reference_engine = true;
    SymbolicExpander::Options idx_opt = ref_opt;
    idx_opt.reference_engine = false;
    const ExpansionResult a = SymbolicExpander(p, ref_opt).run();
    const ExpansionResult b = SymbolicExpander(p, idx_opt).run();
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].disposition, b.trace[i].disposition) << "visit " << i;
      EXPECT_TRUE(a.trace[i].to == b.trace[i].to) << "visit " << i;
      EXPECT_TRUE(a.trace[i].label == b.trace[i].label) << "visit " << i;
    }
  }
}

TEST(SymbolicEquivalence, PartialRunsAgreeUnderAVisitBudget) {
  const Protocol p = protocols::illinois_split();
  for (const std::size_t max_visits : {1u, 17u, 60u}) {
    Verifier::Options ref_opt;
    ref_opt.max_visits = max_visits;
    ref_opt.reference_engine = true;
    Verifier::Options idx_opt = ref_opt;
    idx_opt.reference_engine = false;
    const std::string ref = report_to_json(Verifier(p, ref_opt).verify(), p);
    const std::string idx = report_to_json(Verifier(p, idx_opt).verify(), p);
    EXPECT_EQ(ref, idx) << "max_visits=" << max_visits;
  }
}

}  // namespace
}  // namespace ccver
