/// \file test_containment_index.cpp
/// The subsumption index behind the symbolic engine's pruning: bucket
/// routing, mask prefilters, tombstone lifecycle, and -- the property the
/// whole design rests on -- answer-equivalence with a plain linear scan
/// over the live states, for both pruning modes, on real state
/// populations.

#include <gtest/gtest.h>

#include <vector>

#include "core/containment_index.hpp"
#include "core/expansion.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

class ContainmentIndexTest : public ::testing::Test {
 protected:
  const Protocol p = protocols::illinois();

  [[nodiscard]] CompositeState parse(std::string_view text) const {
    return CompositeState::parse(p, text);
  }
};

TEST_F(ContainmentIndexTest, FindsSubsumingStateNotJustEqualOnes) {
  ContainmentIndex index(PruningMode::Containment);
  const CompositeState broad = parse("(Shared+, Inv*) level=many");
  const CompositeState narrow = parse("(Shared+) level=many");
  std::vector<CompositeState> archive = {broad};
  index.insert(0, archive[0]);

  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };
  ASSERT_TRUE(narrow.contained_in(broad));
  EXPECT_TRUE(index.any_subsuming(narrow, state_of));
  // Containment is not symmetric: the broad state is not subsumed by an
  // index holding only itself... and trivially is by an equal entry.
  EXPECT_TRUE(index.any_subsuming(broad, state_of));
}

TEST_F(ContainmentIndexTest, EqualityModeMatchesOnlyExactDuplicates) {
  ContainmentIndex index(PruningMode::EqualityOnly);
  const CompositeState broad = parse("(Shared+, Inv*) level=many");
  const CompositeState narrow = parse("(Shared+) level=many");
  std::vector<CompositeState> archive = {broad};
  index.insert(0, archive[0]);

  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };
  ASSERT_TRUE(narrow.contained_in(broad));
  EXPECT_FALSE(index.any_subsuming(narrow, state_of));
  EXPECT_TRUE(index.any_subsuming(broad, state_of));
}

TEST_F(ContainmentIndexTest, DifferentLevelOrMDataNeverSubsumes) {
  ContainmentIndex index(PruningMode::Containment);
  std::vector<CompositeState> archive = {
      parse("(Shared+, Inv*) level=many"),
  };
  index.insert(0, archive[0]);
  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };
  EXPECT_FALSE(index.any_subsuming(parse("(Shared, Inv*) level=one"), state_of));
  EXPECT_FALSE(index.any_subsuming(
      parse("(Shared+, Inv*) mem=obsolete level=many"), state_of));
}

TEST_F(ContainmentIndexTest, TombstonedEntriesStopAnswering) {
  ContainmentIndex index(PruningMode::Containment);
  std::vector<CompositeState> archive = {parse("(Shared+, Inv*) level=many")};
  index.insert(0, archive[0]);
  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };
  const CompositeState q = parse("(Shared+) level=many");
  EXPECT_TRUE(index.any_subsuming(q, state_of));
  index.deactivate(0);
  EXPECT_FALSE(index.alive(0));
  EXPECT_FALSE(index.any_subsuming(q, state_of));
  index.activate(0);
  EXPECT_TRUE(index.any_subsuming(q, state_of));
}

TEST_F(ContainmentIndexTest, EvictContainedTombstonesExactlyTheContained) {
  ContainmentIndex index(PruningMode::Containment);
  std::vector<CompositeState> archive = {
      parse("(Shared+) level=many"),            // contained in newcomer
      parse("(Shared, Inv*) level=one"),        // different level: kept
      parse("(Shared+, Inv+) level=many"),      // contained in newcomer
  };
  for (std::size_t i = 0; i < archive.size(); ++i) index.insert(i, archive[i]);
  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };

  const CompositeState newcomer = parse("(Shared+, Inv*) level=many");
  std::vector<std::size_t> evicted;
  index.evict_contained(newcomer, state_of,
                        [&](std::size_t i) { evicted.push_back(i); });
  EXPECT_EQ(evicted, (std::vector<std::size_t>{0, 2}));
  EXPECT_FALSE(index.alive(0));
  EXPECT_TRUE(index.alive(1));
  EXPECT_FALSE(index.alive(2));
}

TEST_F(ContainmentIndexTest, EvictIsANoOpInEqualityMode) {
  ContainmentIndex index(PruningMode::EqualityOnly);
  std::vector<CompositeState> archive = {parse("(Shared+) level=many")};
  index.insert(0, archive[0]);
  const auto state_of = [&](std::size_t i) -> const CompositeState& {
    return archive[i];
  };
  std::size_t evictions = 0;
  index.evict_contained(parse("(Shared+, Inv*) level=many"), state_of,
                        [&](std::size_t) { ++evictions; });
  EXPECT_EQ(evictions, 0u);
  EXPECT_TRUE(index.alive(0));
}

/// The load-bearing property: on every reachable state population, the
/// index answers exactly like a linear scan over the live entries.
TEST(ContainmentIndexEquivalence, AgreesWithLinearScanOnRealPopulations) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const Protocol p = np.factory();
    SymbolicExpander::Options opt;
    opt.pruning = PruningMode::EqualityOnly;  // densest population
    const ExpansionResult r = SymbolicExpander(p, opt).run();

    for (const PruningMode mode :
         {PruningMode::Containment, PruningMode::EqualityOnly}) {
      ContainmentIndex index(mode);
      for (std::size_t i = 0; i < r.archive.size(); ++i) {
        index.insert(i, r.archive[i].state);
        if (i % 3 == 0) index.deactivate(i);  // exercise tombstones
      }
      const auto state_of = [&](std::size_t i) -> const CompositeState& {
        return r.archive[i].state;
      };
      for (const ArchiveEntry& e : r.archive) {
        bool scan = false;
        for (std::size_t i = 0; i < r.archive.size(); ++i) {
          if (!index.alive(i)) continue;
          if (mode == PruningMode::Containment
                  ? e.state.contained_in(r.archive[i].state)
                  : e.state == r.archive[i].state) {
            scan = true;
            break;
          }
        }
        EXPECT_EQ(index.any_subsuming(e.state, state_of), scan)
            << np.name << ": " << e.state.to_string(p);
      }
    }
  }
}

}  // namespace
}  // namespace ccver
