/// \file test_kernel_equivalence.cpp
/// The symmetry-reduced successor kernel must be invisible in every result:
/// for every shipped spec, cache count, equivalence and thread count, the
/// reduced expansion (the default) and the reference unreduced expansion
/// (`exploit_symmetry = false`) must produce byte-identical reachable
/// sets, error lists and counters -- only `symmetry_skips` may differ.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "enumeration/enumerator.hpp"
#include "spec/loader.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

/// Locates the repository's specs/ directory relative to the test binary
/// (build/tests/..) or the current working directory.
fs::path specs_dir() {
  for (fs::path base : {fs::current_path(), fs::current_path() / "..",
                        fs::current_path() / "../.."}) {
    if (fs::exists(base / "specs" / "illinois.ccp")) return base / "specs";
  }
  return "/root/repo/specs";  // repository default
}

std::vector<std::string> spec_stems() {
  std::vector<std::string> stems;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(specs_dir())) {
    if (entry.path().extension() == ".ccp") {
      stems.push_back(entry.path().stem().string());
    }
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

// (spec stem, n_caches, equivalence, threads)
using Config = std::tuple<std::string, std::size_t, Equivalence, std::size_t>;

class KernelEquivalence : public ::testing::TestWithParam<Config> {};

EnumerationResult run(const Protocol& p, const Config& config,
                      bool exploit_symmetry) {
  Enumerator::Options opt;
  opt.n_caches = std::get<1>(config);
  opt.equivalence = std::get<2>(config);
  opt.threads = std::get<3>(config);
  opt.keep_states = true;
  opt.exploit_symmetry = exploit_symmetry;
  return Enumerator(p, opt).run();
}

TEST_P(KernelEquivalence, ReducedExpansionIsInvisibleInResults) {
  const Config& config = GetParam();
  const Protocol p =
      load_protocol_file(specs_dir() / (std::get<0>(config) + ".ccp"));

  const EnumerationResult reduced = run(p, config, true);
  const EnumerationResult reference = run(p, config, false);

  EXPECT_EQ(reduced.states, reference.states);
  EXPECT_EQ(reduced.visits, reference.visits);
  EXPECT_EQ(reduced.levels, reference.levels);
  EXPECT_EQ(reduced.expansions, reference.expansions);
  EXPECT_EQ(reduced.errors_truncated, reference.errors_truncated);

  ASSERT_EQ(reduced.reachable.size(), reference.reachable.size());
  for (std::size_t i = 0; i < reduced.reachable.size(); ++i) {
    EXPECT_EQ(reduced.reachable[i], reference.reachable[i])
        << "reachable set diverges at index " << i << ": "
        << to_string(p, reduced.reachable[i]) << " vs "
        << to_string(p, reference.reachable[i]);
  }

  ASSERT_EQ(reduced.errors.size(), reference.errors.size());
  for (std::size_t i = 0; i < reduced.errors.size(); ++i) {
    EXPECT_EQ(reduced.errors[i].state, reference.errors[i].state);
    EXPECT_EQ(reduced.errors[i].detail, reference.errors[i].detail);
    EXPECT_EQ(reduced.errors[i].path, reference.errors[i].path);
  }

  // The reference never skips; the reduced run skips exactly when counting
  // equivalence makes caches interchangeable (any multi-cache run: the
  // initial state alone has n equal cells).
  EXPECT_EQ(reference.symmetry_skips, 0U);
  const bool expect_skips = std::get<2>(config) == Equivalence::Counting &&
                            std::get<1>(config) >= 2;
  EXPECT_EQ(reduced.symmetry_skips > 0, expect_skips);
}

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  return std::get<0>(info.param) + "_n" +
         std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) == Equivalence::Strict ? "_strict"
                                                         : "_counting") +
         "_t" + std::to_string(std::get<3>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, KernelEquivalence,
    ::testing::Combine(::testing::ValuesIn(spec_stems()),
                       ::testing::Values<std::size_t>(1, 2, 3, 4, 5),
                       ::testing::Values(Equivalence::Strict,
                                         Equivalence::Counting),
                       ::testing::Values<std::size_t>(1, 4)),
    config_name);

}  // namespace
}  // namespace ccver
