/// \file test_analysis.cpp
/// The static-analysis engine: every check id is triggered by (a) a
/// mutated library protocol built with ProtocolMutator and round-tripped
/// through the spec writer and lenient parser, and (b) a `.ccp` fixture
/// under tests/fixtures/lint/ whose diagnostics carry file:line:col
/// positions. Also covers the text/JSON/SARIF renderers.

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "analysis/checks.hpp"
#include "analysis/output.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"
#include "spec/loader.hpp"
#include "spec/parser.hpp"
#include "spec/writer.hpp"
#include "util/budget.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

fs::path fixture(const std::string& name) {
  return fs::path(CCVER_SOURCE_DIR) / "tests" / "fixtures" / "lint" /
         (name + ".ccp");
}

/// Returns the first diagnostic with the given check id, or nullptr.
const Diagnostic* find_diag(const LintReport& report, std::string_view id) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.check == id) return &d;
  }
  return nullptr;
}

/// Lints a mutated protocol after a writer/lenient-parser round trip, so
/// the diagnostics carry the rewritten spec's source positions.
LintReport lint_via_spec(const Protocol& mutant) {
  return lint_protocol(parse_protocol_lenient(to_spec(mutant)));
}

// ------------------------------------------------- mutation-driven checks

TEST(Analysis, DuplicateRuleFromMutatedProtocol) {
  const Protocol base = protocols::msi();
  const Protocol mutant =
      ProtocolMutator::with_extra_rule(base, base.rules().front(), "-Dup");
  const LintReport report = lint_via_spec(mutant);
  const Diagnostic* d = find_diag(report, "duplicate-rule");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(d->span.known());
  EXPECT_TRUE(report.has_errors());
}

TEST(Analysis, RuleOverlapFromMutatedProtocol) {
  const Protocol base = protocols::illinois();
  // Clone an unguarded rule with a Shared guard: both now apply whenever
  // the block is shared.
  Rule clone;
  std::size_t index = base.rules().size();
  for (std::size_t i = 0; i < base.rules().size(); ++i) {
    if (base.rules()[i].guard == SharingGuard::Any) {
      clone = base.rules()[i];
      index = i;
      break;
    }
  }
  ASSERT_LT(index, base.rules().size());
  clone.guard = SharingGuard::Shared;
  const Protocol mutant =
      ProtocolMutator::with_extra_rule(base, clone, "-Overlap");
  const LintReport report = lint_via_spec(mutant);
  const Diagnostic* d = find_diag(report, "rule-overlap");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(d->span.known());
}

TEST(Analysis, GuardInNullFromMutatedProtocol) {
  // Illinois relies on sharing detection; flipping its characteristic to
  // null leaves every guarded rule stranded.
  const Protocol mutant = ProtocolMutator::with_characteristic(
      protocols::illinois(), CharacteristicKind::Null, "-Null");
  const LintReport report = lint_via_spec(mutant);
  const Diagnostic* d = find_diag(report, "guard-in-null");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(d->span.known());
}

TEST(Analysis, MissingCoverageFromMutatedProtocol) {
  const Protocol base = protocols::msi();
  // Drop the Shared replacement rule: Z is no longer covered there.
  const StateId shared = *base.find_state("Shared");
  std::size_t index = base.rules().size();
  for (std::size_t i = 0; i < base.rules().size(); ++i) {
    if (base.rules()[i].from == shared &&
        base.rules()[i].op == StdOps::Replace) {
      index = i;
    }
  }
  ASSERT_LT(index, base.rules().size());
  const Protocol mutant =
      ProtocolMutator::without_rule(base, index, "-Gap");
  const LintReport report = lint_via_spec(mutant);
  const Diagnostic* d = find_diag(report, "missing-coverage");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(d->span.known());
  EXPECT_NE(d->message.find("Shared"), std::string::npos);
}

TEST(Analysis, UnusedOpFromMutatedProtocol) {
  const Protocol mutant = ProtocolMutator::with_extra_op(
      protocols::msi(), OpDef{"Probe", false, false}, "-Op");
  const LintReport report = lint_via_spec(mutant);
  const Diagnostic* d = find_diag(report, "unused-op");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Note);
  EXPECT_TRUE(d->span.known());
  // A note alone neither errs nor warns.
  EXPECT_EQ(report.count(Severity::Error), 0u);
  EXPECT_EQ(report.count(Severity::Warning), 0u);
}

TEST(Analysis, OwnerEvictNoWritebackFromBuggyVariant) {
  const LintReport report =
      lint_via_spec(protocols::berkeley_owner_silent_drop());
  const Diagnostic* d = find_diag(report, "owner-evict-no-writeback");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_TRUE(d->span.known());
}

TEST(Analysis, StoreNoInvalidateFromBuggyVariant) {
  const LintReport report =
      lint_via_spec(protocols::illinois_no_invalidate_on_write_hit());
  const Diagnostic* d = find_diag(report, "store-no-invalidate");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_TRUE(d->span.known());
}

TEST(Analysis, LoadPreferMissingOwnerFromMutatedProtocol) {
  const Protocol base = protocols::msi();
  const StateId modified = *base.find_state("Modified");
  // Strip the owner state from the read-miss supplier list.
  std::size_t index = base.rules().size();
  Rule rule;
  for (std::size_t i = 0; i < base.rules().size(); ++i) {
    rule = base.rules()[i];
    bool changed = false;
    for (DataOp& dop : rule.data_ops) {
      if (dop.kind != DataOpKind::LoadPreferred) continue;
      SmallVec<StateId, kMaxStates> kept;
      for (const StateId s : dop.sources) {
        if (s != modified) kept.push_back(s);
      }
      if (kept.size() != dop.sources.size() && !kept.empty()) {
        dop.sources = kept;
        changed = true;
      }
    }
    if (changed) {
      index = i;
      break;
    }
  }
  ASSERT_LT(index, base.rules().size());
  const Protocol mutant =
      ProtocolMutator::with_rule(base, index, rule, "-NoOwner");
  const LintReport report = lint_via_spec(mutant);
  const Diagnostic* d = find_diag(report, "load-prefer-missing-owner");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_TRUE(d->span.known());
  EXPECT_NE(d->message.find("Modified"), std::string::npos);
}

TEST(Analysis, ReachabilityChecksAreGatedBehindStructuralErrors) {
  // A protocol with a structural error must not run (possibly misleading)
  // reachability checks: the duplicate-rule mutant of DeadTrap-like specs
  // would otherwise also report dead rules.
  const Protocol base = protocols::msi();
  const Protocol mutant =
      ProtocolMutator::with_extra_rule(base, base.rules().front(), "-Dup");
  const LintReport report = lint_protocol(mutant);
  EXPECT_NE(find_diag(report, "duplicate-rule"), nullptr);
  EXPECT_EQ(find_diag(report, "dead-state"), nullptr);
  EXPECT_EQ(find_diag(report, "dead-rule"), nullptr);
}

// ---------------------------------------------- progress-layer mutants

/// Index of the first rule matching (from, op, guard), or rules().size().
std::size_t rule_index(const Protocol& p, std::string_view from, OpId op,
                       SharingGuard guard) {
  const StateId f = *p.find_state(from);
  for (std::size_t i = 0; i < p.rules().size(); ++i) {
    const Rule& r = p.rules()[i];
    if (r.from == f && r.op == op && r.guard == guard) return i;
  }
  return p.rules().size();
}

TEST(Analysis, LivelockCycleFromMutatedSplitProtocol) {
  const Protocol base = protocols::illinois_split();
  const OpId ackr = *base.find_op("AckR");
  // Drop the shared-case fill completion: once a second reader joins a
  // pending line, readers can keep piling on forever while no AckR is
  // enabled -- but a write miss still aborts the pending set, so a
  // completing continuation stays reachable (livelock, not deadlock).
  const std::size_t shared_fill =
      rule_index(base, "ReadPending", ackr, SharingGuard::Shared);
  ASSERT_LT(shared_fill, base.rules().size());
  const Protocol mutant =
      ProtocolMutator::without_rule(base, shared_fill, "-SharedFillLost");
  const LintReport report = lint_via_spec(mutant);
  const Diagnostic* d = find_diag(report, "livelock-cycle");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(d->span.known());
  EXPECT_TRUE(report.has_errors());
}

TEST(Analysis, UnreachableCompletionFromMutatedSplitProtocol) {
  const Protocol base = protocols::moesi_split();
  // NACK the read miss on a busy line instead of joining: ReadPending now
  // only ever exists alone, so the shared-case fill completion
  // `ReadPending AckR when shared` fires in no reachable state.
  const std::size_t read_join =
      rule_index(base, "Invalid", StdOps::Read, SharingGuard::Shared);
  ASSERT_LT(read_join, base.rules().size());
  Rule nack;
  nack.from = *base.find_state("Invalid");
  nack.op = StdOps::Read;
  nack.guard = SharingGuard::Shared;
  nack.self_next = nack.from;
  std::iota(nack.observed.begin(), nack.observed.end(), StateId{0});
  nack.is_stall = true;
  nack.note = "read miss while the line is busy: NACKed, retry";
  const Protocol mutant =
      ProtocolMutator::with_rule(base, read_join, nack, "-ReadNack");
  const LintReport report = lint_via_spec(mutant);
  const Diagnostic* d = find_diag(report, "unreachable-completion");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_TRUE(d->span.known());
}

TEST(Analysis, GlobalDeadlockFromMutatedSplitProtocol) {
  // Three coordinated slips: the write-miss join forgets to invalidate the
  // other copies, and both grant completions assume the arbiter only
  // grants an unshared line. Two racing upgraders then pin the line shared
  // forever -- nothing in the closure evicts, invalidates, or completes a
  // pending upgrade, while the solo upgrade path still completes (so this
  // is certain starvation, not unreachable-completion).
  const Protocol base = protocols::moesi_split();
  const OpId ackw = *base.find_op("AckW");
  std::size_t i =
      rule_index(base, "Invalid", StdOps::Write, SharingGuard::Shared);
  ASSERT_LT(i, base.rules().size());
  Rule join = base.rules()[i];
  std::iota(join.observed.begin(), join.observed.end(), StateId{0});
  Protocol mutant = ProtocolMutator::with_rule(base, i, join, "-LostInv");
  for (const char* transient : {"WritePending", "UpgradePending"}) {
    i = rule_index(mutant, transient, ackw, SharingGuard::Any);
    ASSERT_LT(i, mutant.rules().size());
    Rule grant = mutant.rules()[i];
    grant.guard = SharingGuard::Unshared;
    mutant = ProtocolMutator::with_rule(mutant, i, grant, "");
  }
  const LintReport report = lint_via_spec(mutant);
  const Diagnostic* d = find_diag(report, "global-deadlock");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_TRUE(d->span.known());
  EXPECT_NE(d->message.find("UpgradePending"), std::string::npos)
      << d->message;
}

TEST(Analysis, AllShippedSpecsAreCleanUnderProgressLayer) {
  const fs::path dir = fs::path(CCVER_SOURCE_DIR) / "specs";
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".ccp") continue;
    ++seen;
    const LintReport report =
        lint_protocol(load_protocol_file(entry.path(), BuildMode::Lenient));
    EXPECT_EQ(report.count(Severity::Error), 0u)
        << entry.path() << ": " << (report.clean() ? std::string()
                                                   : report.diagnostics
                                                         .front()
                                                         .message);
    EXPECT_EQ(report.count(Severity::Warning), 0u) << entry.path();
  }
  EXPECT_EQ(seen, 11u);
}

TEST(Analysis, BudgetExhaustionSkipsReachabilityAndProgressLayers) {
  Budget budget(Budget::Limits{.deadline_ns = 0, .max_states = 1});
  LintOptions options;
  options.budget = &budget;
  const fs::path spec =
      fs::path(CCVER_SOURCE_DIR) / "specs" / "illinoissplit.ccp";
  const LintReport report =
      lint_protocol(load_protocol_file(spec, BuildMode::Lenient), options);
  const Diagnostic* skip = find_diag(report, "layer-skipped");
  ASSERT_NE(skip, nullptr);
  EXPECT_EQ(skip->severity, Severity::Note);
  EXPECT_TRUE(skip->span.known());
  // No verdict from the incomplete graph leaks through.
  for (const CheckInfo& c : all_checks()) {
    if (c.layer != CheckLayer::Reachability && c.layer != CheckLayer::Progress)
      continue;
    if (c.id == "layer-skipped") continue;
    EXPECT_EQ(find_diag(report, c.id), nullptr) << c.id;
  }
}

TEST(Analysis, UnknownDisabledIdRaisesSpecError) {
  LintOptions options;
  options.disabled = {"no-such-check"};
  try {
    (void)lint_protocol(protocols::msi(), options);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-check"), std::string::npos) << what;
    EXPECT_NE(what.find("ccverify lint --list"), std::string::npos) << what;
  }
}

TEST(Analysis, DisablingACheckSuppressesItsDiagnostics) {
  const Protocol p =
      load_protocol_file(fixture("global_deadlock"), BuildMode::Lenient);
  LintOptions options;
  options.disabled = {"global-deadlock"};
  const LintReport report = lint_protocol(p, options);
  EXPECT_EQ(find_diag(report, "global-deadlock"), nullptr);
}

// -------------------------------------------------- fixture-file checks

struct FixtureCase {
  const char* file;     ///< fixture basename under tests/fixtures/lint/
  const char* check;    ///< expected check id
  Severity severity;    ///< expected severity
};

class LintFixture : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixture, TriggersExactlyItsCheckWithAPosition) {
  const FixtureCase& c = GetParam();
  const Protocol p =
      load_protocol_file(fixture(c.file), BuildMode::Lenient);
  const LintReport report = lint_protocol(p);
  ASSERT_FALSE(report.clean());
  const Diagnostic* d = find_diag(report, c.check);
  ASSERT_NE(d, nullptr) << report.diagnostics.front().check;
  EXPECT_EQ(d->severity, c.severity);
  EXPECT_TRUE(d->span.known());
  // The fixture is minimal: every diagnostic it raises is of this check.
  for (const Diagnostic& other : report.diagnostics) {
    EXPECT_EQ(other.check, c.check) << other.message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllChecks, LintFixture,
    ::testing::Values(
        FixtureCase{"duplicate_rule", "duplicate-rule", Severity::Error},
        FixtureCase{"rule_overlap", "rule-overlap", Severity::Error},
        FixtureCase{"guard_in_null", "guard-in-null", Severity::Error},
        FixtureCase{"missing_coverage", "missing-coverage", Severity::Error},
        FixtureCase{"unused_op", "unused-op", Severity::Note},
        FixtureCase{"owner_evict_no_writeback", "owner-evict-no-writeback",
                    Severity::Warning},
        FixtureCase{"store_no_invalidate", "store-no-invalidate",
                    Severity::Warning},
        FixtureCase{"load_prefer_missing_owner", "load-prefer-missing-owner",
                    Severity::Warning},
        FixtureCase{"dead_state", "dead-state", Severity::Warning},
        FixtureCase{"dead_rule", "dead-rule", Severity::Warning},
        FixtureCase{"stuck_transient", "stuck-transient",
                    Severity::Warning},
        FixtureCase{"global_deadlock", "global-deadlock", Severity::Error},
        FixtureCase{"livelock_cycle", "livelock-cycle", Severity::Error},
        FixtureCase{"unreachable_completion", "unreachable-completion",
                    Severity::Warning}),
    [](const ::testing::TestParamInfo<FixtureCase>& i) {
      return std::string(i.param.file);
    });

TEST(Analysis, ParseErrorFixtureFailsEvenLeniently) {
  try {
    (void)load_protocol_file(fixture("parse_error"), BuildMode::Lenient);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_TRUE(e.span().known());
    EXPECT_NE(std::string(e.what()).find("parse_error.ccp"),
              std::string::npos);
  }
}

// --------------------------------------------------------- renderers

LintedFile lint_fixture_file(const std::string& name) {
  const std::string path = fixture(name).string();
  return LintedFile{
      path, lint_protocol(load_protocol_file(path, BuildMode::Lenient))};
}

TEST(Output, TextRendererUsesCompilerStyleLocations) {
  const LintedFile f = lint_fixture_file("store_no_invalidate");
  const std::string text = diagnostics_to_text({f});
  EXPECT_NE(text.find(f.file + ":22:3: warning: "), std::string::npos)
      << text;
  EXPECT_NE(text.find("[store-no-invalidate]"), std::string::npos);
  EXPECT_NE(text.find("hint: "), std::string::npos);
}

TEST(Output, JsonCarriesSchemaVersionSpanAndSummary) {
  const LintedFile f = lint_fixture_file("dead_state");
  const std::string json = diagnostics_to_json({f});
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"check\":\"dead-state\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":10"), std::string::npos);
  EXPECT_NE(json.find("\"column\":3"), std::string::npos);
  EXPECT_NE(json.find("\"location\":\"" + f.file + ":10:3\""),
            std::string::npos);
  EXPECT_NE(json.find("\"summary\":{\"errors\":0,\"warnings\":1,\"notes\":0}"),
            std::string::npos);
}

TEST(Output, JsonReportsUnknownPositionsAsZero) {
  // Library protocols have no source; the schema keeps the keys, zeroed.
  const LintedFile f{"MSI", lint_protocol(protocols::msi())};
  const std::string json = diagnostics_to_json({f});
  EXPECT_NE(json.find("\"file\":\"MSI\""), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\":[]"), std::string::npos);
}

TEST(Output, SarifCarriesRulesResultsAndRegions) {
  const LintedFile f = lint_fixture_file("duplicate_rule");
  const std::string sarif = diagnostics_to_sarif({f});
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"duplicate-rule\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":15"), std::string::npos) << sarif;
  // Every registered check appears as a rule descriptor.
  for (const CheckInfo& c : all_checks()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(c.id) + "\""),
              std::string::npos)
        << c.id;
  }
}

TEST(Output, SarifCarriesRelatedLocationsAndFingerprints) {
  const LintedFile f = lint_fixture_file("global_deadlock");
  const std::string sarif = diagnostics_to_sarif({f});
  // The fix hint rides as a relatedLocation annotation...
  EXPECT_NE(sarif.find("\"relatedLocations\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("\"text\":\"hint: "), std::string::npos);
  // ...and every result carries a stable check@line:column fingerprint.
  EXPECT_NE(sarif.find("\"partialFingerprints\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ccverifyLint/v1\":\"global-deadlock@"),
            std::string::npos);
}

TEST(Output, DiagnosticsSortByPositionThenCheck) {
  std::vector<Diagnostic> diags = {
      {"b-check", Severity::Warning, SourceSpan{9, 1}, "later", ""},
      {"b-check", Severity::Warning, SourceSpan{2, 7}, "early-wide", ""},
      {"a-check", Severity::Error, SourceSpan{2, 7}, "early", ""},
      {"c-check", Severity::Note, SourceSpan{}, "unlocated", ""},
  };
  sort_diagnostics(diags);
  EXPECT_EQ(diags[0].check, "c-check");  // unknown position sorts first
  EXPECT_EQ(diags[1].check, "a-check");
  EXPECT_EQ(diags[2].message, "early-wide");
  EXPECT_EQ(diags[3].message, "later");
}

}  // namespace
}  // namespace ccver
