/// \file test_moesi_split.cpp
/// The MOESISplit protocol: upgrade-race semantics, pending-supplier data
/// flow, reads hitting on pending upgrades, and the upgrade-race mutant.

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "enumeration/coverage.hpp"
#include "enumeration/enumerator.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

class MoesiSplit : public ::testing::Test {
 protected:
  const Protocol p = protocols::moesi_split();
  const OpId ackr = *p.find_op("AckR");
  const OpId ackw = *p.find_op("AckW");
};

TEST_F(MoesiSplit, VerifiesWithTwentySevenEssentialStates) {
  const VerificationReport report = Verifier(p).verify();
  EXPECT_TRUE(report.ok) << report.summary(p);
  EXPECT_EQ(report.essential.size(), 27u);
}

TEST_F(MoesiSplit, RacingUpgradersCoexistUntilCompletion) {
  ConcreteBlock b = ConcreteBlock::initial(p, 3);
  // Two caches acquire Shared copies, then both request upgrades.
  (void)apply_op(p, b, 0, StdOps::Read);
  (void)apply_op(p, b, 0, ackr);
  (void)apply_op(p, b, 1, StdOps::Read);
  (void)apply_op(p, b, 1, ackr);
  (void)apply_op(p, b, 0, StdOps::Write);
  (void)apply_op(p, b, 1, StdOps::Write);
  EXPECT_EQ(p.state_name(b.states[0]), "UpgradePending");
  EXPECT_EQ(p.state_name(b.states[1]), "UpgradePending");

  // The first completion wins; the loser is invalidated, not left stale.
  (void)apply_op(p, b, 1, ackw);
  EXPECT_EQ(p.state_name(b.states[1]), "Modified");
  EXPECT_EQ(p.state_name(b.states[0]), "Invalid");
  EXPECT_FALSE(holds_stale_copy(p, b, 0));
  // The winner's later completion is a discarded response.
  const ApplyOutcome late = apply_op(p, b, 0, ackw);
  EXPECT_FALSE(late.applied);
}

TEST_F(MoesiSplit, ReadsHitOnPendingUpgrades) {
  ConcreteBlock b = ConcreteBlock::initial(p, 2);
  // Both caches read (Shared copies), then cache 0 requests an upgrade.
  // (A lone reader would fill Exclusive and upgrade silently instead.)
  (void)apply_op(p, b, 0, StdOps::Read);
  (void)apply_op(p, b, 0, ackr);
  (void)apply_op(p, b, 1, StdOps::Read);
  (void)apply_op(p, b, 1, ackr);
  (void)apply_op(p, b, 0, StdOps::Write);  // upgrade pending
  EXPECT_EQ(p.state_name(b.states[0]), "UpgradePending");
  const ApplyOutcome read = apply_op(p, b, 0, StdOps::Read);
  ASSERT_TRUE(read.applied);
  EXPECT_FALSE(read.rule->is_stall);  // the copy is still readable
  EXPECT_EQ(cdata_of(p, b, 0), CData::Fresh);
}

TEST_F(MoesiSplit, PendingWriterSuppliesItsLatch) {
  ConcreteBlock b = ConcreteBlock::initial(p, 3);
  (void)apply_op(p, b, 0, StdOps::Write);  // cache 0 writes, retires
  (void)apply_op(p, b, 0, ackw);
  (void)apply_op(p, b, 1, StdOps::Write);  // kills the Modified holder;
                                           // fresh value lives in the latch
  EXPECT_EQ(p.state_name(b.states[0]), "Invalid");
  EXPECT_EQ(p.state_name(b.states[1]), "WritePending");
  EXPECT_EQ(mdata_of(b), MData::Obsolete);
  EXPECT_EQ(cdata_of(p, b, 1), CData::Fresh);

  // A read request latches from the pending writer, not stale memory.
  const ApplyOutcome read = apply_op(p, b, 2, StdOps::Read);
  ASSERT_TRUE(read.applied);
  ASSERT_TRUE(read.supplier.has_value());
  EXPECT_FALSE(read.supplier->from_memory);
  EXPECT_EQ(read.supplier->cache, 1u);
  EXPECT_EQ(cdata_of(p, b, 2), CData::Fresh);
}

TEST_F(MoesiSplit, OwnerDowngradePathMatchesMoesi) {
  ConcreteBlock b = ConcreteBlock::initial(p, 2);
  (void)apply_op(p, b, 0, StdOps::Write);
  (void)apply_op(p, b, 0, ackw);           // Modified
  (void)apply_op(p, b, 1, StdOps::Read);   // remote read request
  EXPECT_EQ(p.state_name(b.states[0]), "Owned");
  (void)apply_op(p, b, 1, ackr);
  EXPECT_EQ(p.state_name(b.states[1]), "Shared");
  EXPECT_EQ(mdata_of(b), MData::Obsolete);  // no memory update, as in MOESI
}

TEST_F(MoesiSplit, ConcreteStatesCoveredByEssentialStates) {
  const ExpansionResult symbolic = SymbolicExpander(p).run();
  for (const std::size_t n : {2u, 3u}) {
    Enumerator::Options opt;
    opt.n_caches = n;
    opt.keep_states = true;
    const EnumerationResult concrete = Enumerator(p, opt).run();
    EXPECT_TRUE(concrete.errors.empty());
    const CoverageReport coverage =
        check_coverage(p, symbolic.essential, concrete.reachable);
    EXPECT_TRUE(coverage.complete()) << "n=" << n;
  }
}

TEST_F(MoesiSplit, UpgradeRaceMutantIsCaught) {
  const Protocol buggy = protocols::moesi_split_upgrade_race();
  Verifier::Options opt;
  opt.build_graph = false;
  const VerificationReport report = Verifier(buggy, opt).verify();
  ASSERT_FALSE(report.ok);
  bool upgrade_involved = false;
  for (const VerificationError& e : report.errors) {
    upgrade_involved =
        upgrade_involved ||
        e.violation.detail.find("UpgradePending") != std::string::npos;
  }
  EXPECT_TRUE(upgrade_involved) << report.summary(buggy);

  // Cross-check concretely: the race needs only two caches.
  Enumerator::Options eopt;
  eopt.n_caches = 2;
  const EnumerationResult concrete = Enumerator(buggy, eopt).run();
  EXPECT_FALSE(concrete.errors.empty());
}

}  // namespace
}  // namespace ccver
