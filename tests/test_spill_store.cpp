/// \file test_spill_store.cpp
/// Unit coverage for the cold tier of the tiered visited set: spill-run
/// round-trips through `SpillStore` (partitioning, probing, adoption,
/// validation and write-failure fallback) and the delta-encoded frontier
/// runs plus their k-way merge in `run_merge`.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "enumeration/enum_state.hpp"
#include "enumeration/run_merge.hpp"
#include "enumeration/spill_store.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kCaches = 8;
constexpr std::uint64_t kFingerprint = 0x5eed5eed5eed5eedULL;

/// Deterministic distinct keys: the base-8 digits of `i` spread across the
/// cells, so every i < 8^kCaches yields a unique, valid (6-bit) cell
/// vector. No sortedness is implied by i -- callers sort where needed.
EnumKey make_key(std::uint64_t i) {
  std::uint8_t cells[kCaches];
  for (std::size_t j = 0; j < kCaches; ++j) {
    cells[j] = static_cast<std::uint8_t>((i >> (3 * j)) & 7);
  }
  return EnumKey::pack(cells, kCaches, static_cast<std::uint8_t>(i & 3));
}

std::vector<EnumKey> make_keys(std::uint64_t count, std::uint64_t start = 0) {
  std::vector<EnumKey> keys;
  keys.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) keys.push_back(make_key(start + i));
  return keys;
}

class SpillStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("ccver_spill_test_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] SpillStore::Options options() const {
    SpillStore::Options opt;
    opt.dir = dir_;
    opt.fingerprint = kFingerprint;
    opt.n_caches = kCaches;
    opt.equivalence = Equivalence::Strict;
    return opt;
  }

  fs::path dir_;
};

TEST_F(SpillStoreTest, SpillThenProbe) {
  SpillStore store(options());
  const std::vector<EnumKey> keys = make_keys(5000);
  ASSERT_TRUE(store.spill(keys));

  EXPECT_EQ(store.spilled_keys(), keys.size());
  EXPECT_TRUE(store.has_runs());
  for (const EnumKey& k : keys) EXPECT_TRUE(store.contains(k));
  for (std::uint64_t i = 0; i < 5000; ++i) {
    EXPECT_FALSE(store.contains(make_key(100000 + i)));
  }

  // Every registered run holds keys of its own partition only, and the
  // manifest accounts for every spilled key exactly once.
  std::uint64_t manifest_keys = 0;
  for (const SpillRunRef& run : store.manifest()) {
    EXPECT_LT(run.partition, SpillStore::kPartitions);
    EXPECT_NE(run.checksum, 0u);
    manifest_keys += run.keys;
  }
  EXPECT_EQ(manifest_keys, keys.size());
}

TEST_F(SpillStoreTest, MultipleGenerationsStayProbeable) {
  SpillStore store(options());
  ASSERT_TRUE(store.spill(make_keys(1200, 0)));
  const std::size_t runs_after_first = store.run_count();
  ASSERT_TRUE(store.spill(make_keys(1200, 5000)));
  EXPECT_GT(store.run_count(), runs_after_first);
  EXPECT_EQ(store.spilled_keys(), 2400u);
  for (std::uint64_t i = 0; i < 1200; ++i) {
    EXPECT_TRUE(store.contains(make_key(i)));
    EXPECT_TRUE(store.contains(make_key(5000 + i)));
  }
}

TEST_F(SpillStoreTest, AppendKeysRecoversEverySpilledKey) {
  SpillStore store(options());
  std::vector<EnumKey> keys = make_keys(800);
  ASSERT_TRUE(store.spill(keys));

  std::vector<EnumKey> recovered;
  store.append_keys(recovered);
  ASSERT_EQ(recovered.size(), keys.size());
  std::sort(keys.begin(), keys.end(), key_less);
  std::sort(recovered.begin(), recovered.end(), key_less);
  EXPECT_EQ(recovered, keys);
}

TEST_F(SpillStoreTest, AdoptRoundTrip) {
  std::vector<SpillRunRef> manifest;
  const std::vector<EnumKey> keys = make_keys(3000);
  {
    SpillStore writer(options());
    ASSERT_TRUE(writer.spill(keys));
    manifest = writer.manifest();
  }

  SpillStore reader(options());
  reader.adopt(manifest);
  EXPECT_EQ(reader.spilled_keys(), keys.size());
  EXPECT_EQ(reader.run_count(), manifest.size());
  for (const EnumKey& k : keys) EXPECT_TRUE(reader.contains(k));
  EXPECT_FALSE(reader.contains(make_key(999999)));
}

TEST_F(SpillStoreTest, AdoptRejectsForeignFingerprint) {
  std::vector<SpillRunRef> manifest;
  {
    SpillStore writer(options());
    ASSERT_TRUE(writer.spill(make_keys(100)));
    manifest = writer.manifest();
  }

  SpillStore::Options foreign = options();
  foreign.fingerprint = kFingerprint ^ 1;
  SpillStore reader(foreign);
  try {
    reader.adopt(manifest);
    FAIL() << "foreign fingerprint accepted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
}

TEST_F(SpillStoreTest, AdoptRejectsCorruptRun) {
  std::vector<SpillRunRef> manifest;
  {
    SpillStore writer(options());
    ASSERT_TRUE(writer.spill(make_keys(400)));
    manifest = writer.manifest();
  }
  ASSERT_FALSE(manifest.empty());

  // Flip one record byte in the first run: the checksum trailer no longer
  // matches, so adoption must refuse the file.
  const fs::path victim = dir_ / manifest.front().file;
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  SpillStore reader(options());
  EXPECT_THROW(reader.adopt(manifest), IoError);
}

TEST_F(SpillStoreTest, AdoptRejectsManifestKeyCountMismatch) {
  std::vector<SpillRunRef> manifest;
  {
    SpillStore writer(options());
    ASSERT_TRUE(writer.spill(make_keys(300)));
    manifest = writer.manifest();
  }
  ASSERT_FALSE(manifest.empty());
  manifest.front().keys += 1;  // checkpoint and file disagree

  SpillStore reader(options());
  EXPECT_THROW(reader.adopt(manifest), IoError);
}

TEST_F(SpillStoreTest, WriteFailureDisablesStoreWithoutPartialState) {
  SpillStore store(options());
  {
    ScopedFailpoints fp("spill.write_fail=1");
    EXPECT_FALSE(store.spill(make_keys(500)));
  }
  // All-or-nothing: the failed flush registered nothing, and the store
  // stays disabled so the enumerator keeps every key in RAM from here on.
  EXPECT_TRUE(store.write_disabled());
  EXPECT_EQ(store.spilled_keys(), 0u);
  EXPECT_FALSE(store.has_runs());
  EXPECT_FALSE(store.contains(make_key(0)));
  EXPECT_FALSE(store.spill(make_keys(10)));
}

// -- frontier runs (run_merge) ------------------------------------------

TEST_F(SpillStoreTest, FrontierRunRoundTrip) {
  std::vector<EnumKey> keys = make_keys(2000);
  std::sort(keys.begin(), keys.end(), key_less);

  const fs::path run = dir_ / "roundtrip.frun";
  const std::uint64_t bytes = write_frontier_run(run, keys, kCaches);
  EXPECT_GT(bytes, 0u);
  // Delta encoding earns its keep: sorted neighbours share prefixes, so
  // the payload undercuts the 32-byte fixed-width encoding.
  EXPECT_LT(bytes, keys.size() * 32);

  FrontierRunReader reader(run, kCaches);
  EXPECT_EQ(reader.key_count(), keys.size());
  std::vector<EnumKey> decoded;
  EnumKey k;
  while (reader.next(k)) decoded.push_back(k);
  EXPECT_EQ(decoded, keys);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST_F(SpillStoreTest, FrontierReaderRejectsCorruption) {
  std::vector<EnumKey> keys = make_keys(200);
  std::sort(keys.begin(), keys.end(), key_less);
  const fs::path run = dir_ / "corrupt.frun";
  write_frontier_run(run, keys, kCaches);

  {
    std::fstream f(run, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x04);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  EXPECT_THROW(FrontierRunReader(run, kCaches), IoError);
}

TEST_F(SpillStoreTest, FrontierMergerRestoresGlobalOrder) {
  // Three disjoint runs whose key ranges interleave; the merger must hand
  // back one globally sorted stream regardless of chunk size.
  std::vector<std::vector<EnumKey>> runs(3);
  std::vector<EnumKey> all;
  for (std::uint64_t i = 0; i < 900; ++i) {
    const EnumKey k = make_key(i * 7 + 1);
    runs[i % 3].push_back(k);
    all.push_back(k);
  }
  FrontierRunMerger merger;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    std::sort(runs[r].begin(), runs[r].end(), key_less);
    const fs::path path = dir_ / ("merge" + std::to_string(r) + ".frun");
    write_frontier_run(path, runs[r], kCaches);
    merger.add_run(FrontierRunReader(path, kCaches));
  }
  std::sort(all.begin(), all.end(), key_less);

  EXPECT_EQ(merger.pending(), all.size());
  std::vector<EnumKey> merged;
  std::vector<EnumKey> chunk;
  while (!merger.empty()) {
    chunk.clear();
    merger.next_chunk(chunk, 64);  // deliberately tiny: many refills
    EXPECT_LE(chunk.size(), 64u);
    merged.insert(merged.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(merged, all);
  EXPECT_EQ(merger.pending(), 0u);
}

TEST_F(SpillStoreTest, FrontierMergerDrainEmptiesRemainder) {
  std::vector<EnumKey> keys = make_keys(500);
  std::sort(keys.begin(), keys.end(), key_less);
  const fs::path path = dir_ / "drain.frun";
  write_frontier_run(path, keys, kCaches);

  FrontierRunMerger merger;
  merger.add_run(FrontierRunReader(path, kCaches));
  std::vector<EnumKey> head;
  merger.next_chunk(head, 100);
  ASSERT_EQ(head.size(), 100u);

  std::vector<EnumKey> tail;
  merger.drain(tail);
  EXPECT_EQ(tail.size(), 400u);
  EXPECT_TRUE(merger.empty());

  head.insert(head.end(), tail.begin(), tail.end());
  EXPECT_EQ(head, keys);
}

}  // namespace
}  // namespace ccver
