/// \file test_trace_io.cpp
/// Trace persistence (the v1 text format), the bus-cycle cost model, and
/// the enumerator's replay-path tracking.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "enumeration/enumerator.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"
#include "sim/bus_model.hpp"
#include "sim/machine.hpp"
#include "sim/trace_io.hpp"

namespace ccver {
namespace {

namespace fs = std::filesystem;

class TraceIo : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "ccver_trace_io_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(TraceIo, SaveThenLoadRoundTrips) {
  TraceConfig cfg;
  cfg.n_cpus = 4;
  cfg.n_blocks = 16;
  cfg.length = 500;
  cfg.capacity = 4;
  cfg.seed = 3;
  const TraceFile original{cfg.n_cpus, cfg.n_blocks, generate_trace(cfg)};
  const fs::path path = dir_ / "trace.txt";
  save_trace_file(original, path);
  EXPECT_EQ(load_trace_file(path), original);
}

TEST_F(TraceIo, ReplayedTraceProducesIdenticalStats) {
  TraceConfig cfg;
  cfg.n_cpus = 4;
  cfg.n_blocks = 8;
  cfg.length = 2'000;
  const auto events = generate_trace(cfg);
  const fs::path path = dir_ / "trace.txt";
  save_trace_file(TraceFile{cfg.n_cpus, cfg.n_blocks, events}, path);
  const TraceFile replay = load_trace_file(path);

  const Protocol p = protocols::illinois();
  Machine::Options opt;
  opt.n_cpus = cfg.n_cpus;
  const SimResult a = Machine(p, opt).run(events);
  const SimResult b = Machine(p, opt).run(replay.events);
  EXPECT_EQ(a.stats.misses, b.stats.misses);
  EXPECT_EQ(a.stats.bus_cycles, b.stats.bus_cycles);
}

TEST_F(TraceIo, CommentsAndBlankLinesAreSkipped) {
  const fs::path path = dir_ / "trace.txt";
  std::ofstream(path) << "# a comment\n\n"
                         "ccver-trace v1 cpus=2 blocks=4\n"
                         "# another\n"
                         "R 0 1\n\nW 1 3\n";
  const TraceFile t = load_trace_file(path);
  EXPECT_EQ(t.n_cpus, 2u);
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[1].op, StdOps::Write);
}

TEST_F(TraceIo, RejectsMalformedInput) {
  const auto expect_reject = [this](std::string_view contents,
                                    std::string_view what) {
    const fs::path path = dir_ / "bad.txt";
    std::ofstream(path) << contents;
    EXPECT_THROW((void)load_trace_file(path), SpecError) << what;
  };
  expect_reject("R 0 1\n", "missing header");
  expect_reject("ccver-trace v2 cpus=2 blocks=4\n", "wrong version");
  expect_reject("ccver-trace v1 cpus=0 blocks=4\n", "zero cpus");
  expect_reject("ccver-trace v1 cpus=2 blocks=4\nX 0 1\n", "unknown op");
  expect_reject("ccver-trace v1 cpus=2 blocks=4\nR 5 1\n", "cpu range");
  expect_reject("ccver-trace v1 cpus=2 blocks=4\nR 0 9\n", "block range");
  expect_reject("ccver-trace v1 cpus=2 blocks=4\nR 0 1 junk\n", "trailing");
  expect_reject("ccver-trace v1 cpus=2 blocks=4 junk\n", "trailing header");
  expect_reject("ccver-trace v1 cpus=two blocks=4\n", "non-numeric cpus");
  expect_reject("ccver-trace v1 cpus=2 blocks=\n", "empty blocks");
  expect_reject("ccver-trace v1 cpus=2 blocks=4\nR zero 1\n",
                "non-numeric cpu");
  expect_reject("ccver-trace v1 cpus=2 blocks=4\nR 0 1.5\n",
                "non-numeric block");
  expect_reject("ccver-trace v1 cpus=2 blocks=4\nR 0\n", "missing field");
  EXPECT_THROW((void)load_trace_file(dir_ / "nonesuch"), SpecError);
}

TEST_F(TraceIo, MalformedInputErrorsNameTheLine) {
  const fs::path path = dir_ / "bad.txt";
  std::ofstream(path) << "# comment\n"
                         "ccver-trace v1 cpus=2 blocks=4\n"
                         "R 0 1\n"
                         "W 1 bogus\n";
  try {
    (void)load_trace_file(path);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":4:"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
  }
}

// ------------------------------------------------------------- bus cycles

TEST(BusModel, LocalRulesAreFree) {
  const Protocol p = protocols::illinois();
  const StateId sh = *p.find_state("Shared");
  const StateId ve = *p.find_state("ValidExclusive");
  const BusCostModel model;
  // Read hit and silent upgrade: no bus.
  EXPECT_EQ(transaction_cycles(p, *p.find_rule(sh, StdOps::Read, true),
                               model),
            0u);
  EXPECT_EQ(transaction_cycles(p, *p.find_rule(ve, StdOps::Write, false),
                               model),
            0u);
}

TEST(BusModel, FillsCostAddressPlusBlock) {
  const Protocol p = protocols::illinois();
  const StateId inv = p.invalid_state();
  const BusCostModel model;
  EXPECT_EQ(transaction_cycles(p, *p.find_rule(inv, StdOps::Read, false),
                               model),
            model.address_cycles + model.block_cycles);
  // Shared read miss: fill + the dirty holder's flush.
  EXPECT_EQ(transaction_cycles(p, *p.find_rule(inv, StdOps::Read, true),
                               model),
            model.address_cycles + 2 * model.block_cycles);
}

TEST(BusModel, InvalidationOnlyCostsTheAddressPhase) {
  const Protocol p = protocols::illinois();
  const StateId sh = *p.find_state("Shared");
  const BusCostModel model;
  EXPECT_EQ(transaction_cycles(p, *p.find_rule(sh, StdOps::Write, true),
                               model),
            model.address_cycles);
}

TEST(BusModel, BroadcastWritesCostWords) {
  const Protocol p = protocols::firefly();
  const StateId sh = *p.find_state("Shared");
  const BusCostModel model;
  // Shared write hit: write-through word + broadcast word.
  EXPECT_EQ(transaction_cycles(p, *p.find_rule(sh, StdOps::Write, true),
                               model),
            model.address_cycles + 2 * model.word_cycles);
}

TEST(BusModel, StallsAreFree) {
  const Protocol p = protocols::illinois_split();
  const StateId rm = *p.find_state("ReadPending");
  EXPECT_EQ(transaction_cycles(p, *p.find_rule(rm, StdOps::Read, true),
                               BusCostModel{}),
            0u);
}

TEST(BusModel, InvalidateBeatsBroadcastOnMigratorySharing) {
  // Migratory data (read-modify by one cpu at a time) is the classic case
  // where invalidation protocols win on bus occupancy: broadcast keeps
  // pushing updates nobody reads.
  TraceConfig cfg;
  cfg.n_cpus = 4;
  cfg.n_blocks = 8;
  cfg.length = 20'000;
  cfg.pattern = TracePattern::Migratory;
  cfg.write_fraction = 0.5;
  const auto trace = generate_trace(cfg);

  Machine::Options opt;
  opt.n_cpus = cfg.n_cpus;
  const SimResult illinois =
      Machine(protocols::illinois(), opt).run(trace);
  const SimResult dragon = Machine(protocols::dragon(), opt).run(trace);
  EXPECT_LT(illinois.stats.bus_cycles, dragon.stats.bus_cycles);
}

// ------------------------------------------------- enumerator replay paths

TEST(EnumeratorPaths, ErrorPathsReplayFromTheInitialState) {
  const Protocol p = protocols::illinois_no_invalidate_on_write_hit();
  Enumerator::Options opt;
  opt.n_caches = 2;
  opt.track_paths = true;
  const EnumerationResult r = Enumerator(p, opt).run();
  ASSERT_FALSE(r.errors.empty());
  for (const ConcreteError& e : r.errors) {
    ASSERT_GE(e.path.size(), 2u);
    EXPECT_EQ(e.path.front().find("start:"), 0u);
    EXPECT_NE(e.path.back().find("->"), std::string::npos);
  }
}

TEST(EnumeratorPaths, TrackingDoesNotChangeTheVerdictOrCounts) {
  const Protocol p = protocols::dragon();
  Enumerator::Options plain;
  plain.n_caches = 3;
  Enumerator::Options tracked = plain;
  tracked.track_paths = true;
  const EnumerationResult a = Enumerator(p, plain).run();
  const EnumerationResult b = Enumerator(p, tracked).run();
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.visits, b.visits);
  EXPECT_EQ(a.errors.size(), b.errors.size());
}

}  // namespace
}  // namespace ccver
