/// \file test_smoke.cpp
/// End-to-end smoke test: the Illinois protocol verifies with exactly the
/// five essential states of Section 4.

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

TEST(Smoke, IllinoisVerifiesWithFiveEssentialStates) {
  const Protocol p = protocols::illinois();
  const Verifier verifier(p);
  const VerificationReport report = verifier.verify();
  EXPECT_TRUE(report.ok) << report.summary(p);
  EXPECT_EQ(report.essential.size(), 5u) << report.summary(p);
}

}  // namespace
}  // namespace ccver
