/// \file test_util.cpp
/// Substrate utilities: SmallVec semantics, hashing, the deterministic
/// RNG, string helpers, the table and DOT renderers, and the thread pool
/// (chunking, reuse, exception propagation).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "util/dot.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/small_vec.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ccver {
namespace {

// ----------------------------------------------------------------- SmallVec

TEST(SmallVec, PushPopAndIndexing) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  v.emplace_back(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v.back(), 3);
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVec, OverflowThrows) {
  SmallVec<int, 2> v{1, 2};
  EXPECT_THROW(v.push_back(3), InternalError);
}

TEST(SmallVec, OutOfRangeThrows) {
  SmallVec<int, 2> v{1};
  EXPECT_THROW((void)v[1], InternalError);
  SmallVec<int, 2> empty;
  EXPECT_THROW(empty.pop_back(), InternalError);
}

TEST(SmallVec, EraseAtPreservesOrder) {
  SmallVec<int, 4> v{1, 2, 3, 4};
  v.erase_at(1);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 3);
  EXPECT_EQ(v[2], 4);
  EXPECT_THROW(v.erase_at(3), InternalError);
}

TEST(SmallVec, EqualityComparesContents) {
  const SmallVec<int, 4> a{1, 2};
  const SmallVec<int, 4> b{1, 2};
  const SmallVec<int, 4> c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVec, RangeForIteratesExactlySize) {
  SmallVec<int, 8> v{5, 6, 7};
  int sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 18);
}

// --------------------------------------------------------------------- hash

TEST(Hash, Fnv1aIsStable) {
  const std::byte data[] = {std::byte{1}, std::byte{2}, std::byte{3}};
  EXPECT_EQ(fnv1a(data), fnv1a(data));
  const std::byte other[] = {std::byte{1}, std::byte{2}, std::byte{4}};
  EXPECT_NE(fnv1a(data), fnv1a(other));
}

TEST(Hash, CombineIsOrderSensitive) {
  std::uint64_t a = 0;
  hash_combine(a, 1);
  hash_combine(a, 2);
  std::uint64_t b = 0;
  hash_combine(b, 2);
  hash_combine(b, 1);
  EXPECT_NE(a, b);
}

TEST(Hash, Mix64SpreadsSequentialInputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

// ---------------------------------------------------------------------- rng

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(43);
  EXPECT_NE(Rng(42).next(), c.next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(RngTest, UniformCoversTheUnitInterval) {
  Rng rng(11);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(RngTest, ChanceRespectsProbabilityRoughly) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20'000.0, 0.25, 0.02);
}

// ------------------------------------------------------------------ strings

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(StringUtil, SplitAndJoin) {
  const auto parts = split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(StringUtil, ParseUnsigned) {
  EXPECT_EQ(parse_unsigned("0"), 0u);
  EXPECT_EQ(parse_unsigned("12345"), 12345u);
  EXPECT_THROW((void)parse_unsigned(""), SpecError);
  EXPECT_THROW((void)parse_unsigned("12x"), SpecError);
  EXPECT_THROW((void)parse_unsigned("99999999999999999999999"), SpecError);
}

// -------------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "count"});
  t.add_row({"illinois", "5"});
  t.add_row({"dragon-long-name", "7"});
  const std::string text = t.to_string();
  EXPECT_NE(text.find("| illinois"), std::string::npos);
  EXPECT_NE(text.find("| dragon-long-name"), std::string::npos);
  // All lines share one width.
  std::size_t width = 0;
  for (const std::string& line : split(text, '\n')) {
    if (line.empty()) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, RejectsAridityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InternalError);
}

// ---------------------------------------------------------------------- dot

TEST(Dot, EmitsNodesEdgesAndEscapes) {
  DotGraph g("test \"graph\"");
  const std::size_t a = g.add_node("state \"A\"");
  const std::size_t b = g.add_node("B", "box");
  g.add_edge(a, b, "x->y");
  g.highlight_node(b, "red");
  const std::string text = g.to_string();
  EXPECT_NE(text.find("digraph \"test \\\"graph\\\"\""), std::string::npos);
  EXPECT_NE(text.find("state \\\"A\\\""), std::string::npos);
  EXPECT_NE(text.find("shape=box"), std::string::npos);
  EXPECT_NE(text.find("fillcolor=\"red\""), std::string::npos);
  EXPECT_NE(text.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, RejectsBadEdgeEndpoints) {
  DotGraph g("x");
  (void)g.add_node("a");
  EXPECT_THROW(g.add_edge(0, 5, "bad"), InternalError);
}

// -------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, CoversTheFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        hits[i].fetch_add(1);
                      }
                    });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyBulkCalls) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 100,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        total.fetch_add(end - begin);
                      });
  }
  EXPECT_EQ(total.load(), 5'000u);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t, std::size_t) {
    ran = true;
  });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PropagatesWorkerExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t begin, std::size_t, std::size_t) {
                          if (begin > 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t b, std::size_t e, std::size_t) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::size_t sum = 0;  // no synchronization needed: runs on this thread
  pool.parallel_for(0, 10, [&](std::size_t b, std::size_t e, std::size_t) {
    sum += e - b;
  });
  EXPECT_EQ(sum, 10u);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, CountersGaugesAndTimersAccumulate) {
  MetricsRegistry registry;
  registry.counter_add("visits", 3);
  registry.counter_add("visits", 4);
  registry.gauge_set("utilization", 0.25);
  registry.gauge_set("utilization", 0.5);  // last write wins
  registry.timer_add("level", 100);
  registry.timer_add("level", 300);

  const MetricsSnapshot s = registry.snapshot();
  EXPECT_EQ(s.counters.at("visits"), 7u);
  EXPECT_EQ(s.gauges.at("utilization"), 0.5);
  EXPECT_EQ(s.timers.at("level").count, 2u);
  EXPECT_EQ(s.timers.at("level").total_ns, 400u);
  EXPECT_EQ(s.timers.at("level").max_ns, 300u);
  EXPECT_EQ(s.timers.at("level").mean_ns(), 200u);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());

  registry.clear();
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(Metrics, LocalSinkMergesIntoRegistry) {
  MetricsRegistry registry;
  LocalMetrics local;
  local.counter_add("events", 5);
  local.timer_add("block", 42);
  local.timer_add("block", 8);
  registry.merge(local);
  registry.merge(local);  // merging twice doubles everything

  const MetricsSnapshot s = registry.snapshot();
  EXPECT_EQ(s.counters.at("events"), 10u);
  EXPECT_EQ(s.timers.at("block").count, 4u);
  EXPECT_EQ(s.timers.at("block").total_ns, 100u);
}

TEST(Metrics, ConcurrentWorkersMergeWithoutRaces) {
  // Exercised under -fsanitize=thread in CI: per-worker LocalMetrics are
  // lock-free during the sweep, the shared registry takes direct adds from
  // all workers concurrently.
  MetricsRegistry registry;
  ThreadPool pool(8);
  const std::size_t workers = pool.thread_count();
  std::vector<LocalMetrics> locals(workers);
  pool.parallel_for(0, 1'000,
                    [&](std::size_t b, std::size_t e, std::size_t worker) {
                      for (std::size_t i = b; i < e; ++i) {
                        locals[worker].counter_add("local", 1);
                        registry.counter_add("shared", 1);
                        registry.timer_add("shared_t", i);
                      }
                    });
  for (LocalMetrics& local : locals) registry.merge(local);

  const MetricsSnapshot s = registry.snapshot();
  EXPECT_EQ(s.counters.at("local"), 1'000u);
  EXPECT_EQ(s.counters.at("shared"), 1'000u);
  EXPECT_EQ(s.timers.at("shared_t").count, 1'000u);
}

TEST(Metrics, ScopedTimerRecordsOnceAndNullDisarms) {
  MetricsRegistry registry;
  {
    const ScopedTimer timer(&registry, "scope");
  }
  EXPECT_EQ(registry.snapshot().timers.at("scope").count, 1u);
  {
    const ScopedTimer disarmed(nullptr, "scope");  // must be a no-op
  }
  EXPECT_EQ(registry.snapshot().timers.at("scope").count, 1u);
}

TEST(Metrics, TableRendersEveryKindOnce) {
  MetricsRegistry registry;
  registry.counter_add("enum.visits", 68);
  registry.gauge_set("enum.threads", 4.0);
  registry.timer_add("enum.level_wall", 1'500'000);
  const std::string table = metrics_to_table(registry.snapshot());
  EXPECT_NE(table.find("enum.visits"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
  EXPECT_NE(table.find("timer"), std::string::npos);
  EXPECT_NE(table.find("1.5ms"), std::string::npos);
}

}  // namespace
}  // namespace ccver
