/// \file test_split.cpp
/// The split-transaction extension (transient "locked" states, the paper's
/// Section 5 future work): verification of the corrected IllinoisSplit
/// protocol, detection of its two design races (the first-draft stranded-
/// dirty-copy race, reconstructed here, and the lost-invalidation mutant),
/// stall semantics, and concrete cross-checks.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/verifier.hpp"
#include "enumeration/coverage.hpp"
#include "enumeration/enumerator.hpp"
#include "fsm/builder.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

// --------------------------------------------------- the correct protocol

TEST(Split, VerifiesWithTwelveEssentialStates) {
  const Protocol p = protocols::illinois_split();
  const VerificationReport report = Verifier(p).verify();
  EXPECT_TRUE(report.ok) << report.summary(p);
  EXPECT_EQ(report.essential.size(), 12u);
}

TEST(Split, TransientStatesAppearInTheEssentialSet) {
  const Protocol p = protocols::illinois_split();
  const VerificationReport report = Verifier(p).verify();
  const StateId rm = *p.find_state("ReadPending");
  const StateId wm = *p.find_state("WritePending");
  bool saw_rm = false;
  bool saw_wm = false;
  for (const CompositeState& s : report.essential) {
    saw_rm = saw_rm || s.rep_of_state(rm) != Rep::Zero;
    saw_wm = saw_wm || s.rep_of_state(wm) != Rep::Zero;
  }
  EXPECT_TRUE(saw_rm);
  EXPECT_TRUE(saw_wm);
}

TEST(Split, PendingWriterIsUniqueAndFillsAreRaceFree) {
  // The request protocol guarantees at most one WritePending cache; the
  // uniqueness invariant would flag any violation, so a clean verify
  // already proves it. Check the stronger concrete statement at n = 4.
  const Protocol p = protocols::illinois_split();
  Enumerator::Options opt;
  opt.n_caches = 4;
  opt.keep_states = true;
  const EnumerationResult r = Enumerator(p, opt).run();
  EXPECT_TRUE(r.errors.empty());
  const StateId wm = *p.find_state("WritePending");
  for (const EnumKey& key : r.reachable) {
    std::size_t pending_writers = 0;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (key_state(key, i) == wm) ++pending_writers;
    }
    EXPECT_LE(pending_writers, 1u) << to_string(p, key);
  }
}

TEST(Split, ConcreteStatesCoveredByEssentialStates) {
  const Protocol p = protocols::illinois_split();
  const ExpansionResult symbolic = SymbolicExpander(p).run();
  for (const std::size_t n : {2u, 3u, 4u}) {
    Enumerator::Options opt;
    opt.n_caches = n;
    opt.keep_states = true;
    const EnumerationResult concrete = Enumerator(p, opt).run();
    const CoverageReport coverage =
        check_coverage(p, symbolic.essential, concrete.reachable);
    EXPECT_TRUE(coverage.complete()) << "n=" << n;
  }
}

// ------------------------------------------------------- stall semantics

TEST(Split, StallRulesAreSelfLoopNoOps) {
  const Protocol p = protocols::illinois_split();
  const StateId rm = *p.find_state("ReadPending");
  ConcreteBlock b = ConcreteBlock::initial(p, 2);
  (void)apply_op(p, b, 0, StdOps::Read);  // request: park in ReadPending
  ASSERT_EQ(b.states[0], rm);
  const ConcreteBlock before = b;
  for (const OpId op : {StdOps::Read, StdOps::Write, StdOps::Replace}) {
    const ApplyOutcome o = apply_op(p, b, 0, op);
    ASSERT_TRUE(o.applied);
    EXPECT_TRUE(o.rule->is_stall);
    EXPECT_EQ(b, before);  // a stall changes nothing
  }
}

TEST(Split, CompletionFillsExclusiveWhenAlone) {
  const Protocol p = protocols::illinois_split();
  const OpId ackr = *p.find_op("AckR");
  ConcreteBlock b = ConcreteBlock::initial(p, 2);
  (void)apply_op(p, b, 0, StdOps::Read);
  (void)apply_op(p, b, 0, ackr);
  EXPECT_EQ(p.state_name(b.states[0]), "ValidExclusive");
  EXPECT_EQ(cdata_of(p, b, 0), CData::Fresh);
}

TEST(Split, CompletionFillsSharedWhenRacedByAnotherRead) {
  const Protocol p = protocols::illinois_split();
  const OpId ackr = *p.find_op("AckR");
  ConcreteBlock b = ConcreteBlock::initial(p, 2);
  (void)apply_op(p, b, 0, StdOps::Read);
  (void)apply_op(p, b, 1, StdOps::Read);  // second request before the fill
  (void)apply_op(p, b, 0, ackr);
  (void)apply_op(p, b, 1, ackr);
  EXPECT_EQ(p.state_name(b.states[0]), "Shared");
  EXPECT_EQ(p.state_name(b.states[1]), "Shared");
}

TEST(Split, WriteCompletionAbortsLatchedRequests) {
  const Protocol p = protocols::illinois_split();
  const OpId ackw = *p.find_op("AckW");
  ConcreteBlock b = ConcreteBlock::initial(p, 3);
  (void)apply_op(p, b, 0, StdOps::Write);  // ownership pending
  (void)apply_op(p, b, 1, StdOps::Read);   // latches while write pending
  (void)apply_op(p, b, 0, ackw);           // write retires
  EXPECT_EQ(p.state_name(b.states[0]), "Dirty");
  EXPECT_EQ(p.state_name(b.states[1]), "Invalid");  // aborted, not stale
  EXPECT_FALSE(holds_stale_copy(p, b, 1));
}

// --------------------------------------------------------- the two races

TEST(Split, LostInvalidationMutantIsCaught) {
  const Protocol p = protocols::illinois_split_lost_invalidation();
  Verifier::Options opt;
  opt.build_graph = false;
  const VerificationReport report = Verifier(p, opt).verify();
  ASSERT_FALSE(report.ok);
  // The counterexample must involve a stale transient latch.
  bool mentions_pending = false;
  for (const VerificationError& e : report.errors) {
    mentions_pending =
        mentions_pending ||
        e.violation.detail.find("ReadPending") != std::string::npos;
  }
  EXPECT_TRUE(mentions_pending);
}

TEST(Split, FirstDraftStrandedDirtyRaceIsCaught) {
  // Reconstruct the original design error: the shared write request kills
  // the dirty holder without flushing it and cannot source the latch from
  // a pending writer. The verifier found this race in development; pin it.
  const Protocol base = protocols::illinois_split();
  const auto wm = *base.find_state("WritePending");
  std::size_t idx = base.rules().size();
  for (std::size_t i = 0; i < base.rules().size(); ++i) {
    const Rule& r = base.rules()[i];
    if (r.from == base.invalid_state() && r.op == StdOps::Write &&
        r.guard == SharingGuard::Shared) {
      idx = i;
    }
  }
  ASSERT_LT(idx, base.rules().size());
  Rule rule = base.rules()[idx];
  std::erase_if(rule.data_ops, [](const DataOp& d) {
    return d.kind == DataOpKind::WriteBackFrom;
  });
  for (DataOp& d : rule.data_ops) {
    if (d.kind == DataOpKind::LoadPreferred) {
      SmallVec<StateId, kMaxStates> sources;
      for (const StateId s : d.sources) {
        if (s != wm) sources.push_back(s);
      }
      d.sources = sources;
    }
  }
  const Protocol broken =
      ProtocolMutator::with_rule(base, idx, rule, "-FirstDraft");

  Verifier::Options opt;
  opt.build_graph = false;
  const VerificationReport report = Verifier(broken, opt).verify();
  ASSERT_FALSE(report.ok);
  // The counterexample matches the one recorded in illinois_split.cpp:
  // write, retire, write again (strands the dirty data), read stale.
  const Counterexample& path = report.errors.front().path;
  ASSERT_GE(path.steps.size(), 4u);
  EXPECT_EQ(path.steps[1].label, "W_invalid");
}

TEST(Split, BuilderRejectsMalformedStalls) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId t = b.state("T");
  b.rule(inv, StdOps::Read).to(t).load_memory();
  b.rule(t, StdOps::Read).to(t);
  b.rule(inv, StdOps::Write).to(t).load_memory().store();
  b.rule(t, StdOps::Write).to(inv).stall();  // stall must be a self-loop
  b.rule(t, StdOps::Replace).to(inv);
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

TEST(Split, BuilderRejectsDeferStoreOnStoringRule) {
  ProtocolBuilder b("X", CharacteristicKind::Null);
  const StateId inv = b.invalid_state("I");
  const StateId t = b.state("T");
  b.rule(inv, StdOps::Read).to(t).load_memory();
  b.rule(t, StdOps::Read).to(t);
  b.rule(inv, StdOps::Write).to(t).load_memory().store().defer_store();
  b.rule(t, StdOps::Write).to(t).store();
  b.rule(t, StdOps::Replace).to(inv);
  EXPECT_THROW((void)std::move(b).build(), SpecError);
}

}  // namespace
}  // namespace ccver
