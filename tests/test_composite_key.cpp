/// \file test_composite_key.cpp
/// The packed composite-state key: a faithful four-word image of a
/// canonical state. Equality must coincide with state equality, pack/unpack
/// must round-trip every reachable state of every library protocol, and
/// the class-presence masks must be sound necessary conditions for
/// structural covering (no mask filter may reject a real containment).

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "core/composite_key.hpp"
#include "core/expansion.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

/// Every state the symbolic expansion ever archives, in equality-only mode
/// (the larger state population of the two).
std::vector<CompositeState> reachable_states(const Protocol& p) {
  SymbolicExpander::Options opt;
  opt.pruning = PruningMode::EqualityOnly;
  const ExpansionResult r = SymbolicExpander(p, opt).run();
  std::vector<CompositeState> states;
  states.reserve(r.archive.size());
  for (const ArchiveEntry& e : r.archive) states.push_back(e.state);
  return states;
}

TEST(CompositeKey, PackUnpackRoundTripsEveryReachableState) {
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const Protocol p = np.factory();
    for (const CompositeState& s : reachable_states(p)) {
      const CompositeKey k = CompositeKey::pack(s);
      EXPECT_TRUE(k.unpack(p) == s)
          << np.name << ": " << s.to_string(p) << " lost in round-trip";
    }
  }
}

TEST(CompositeKey, EqualityCoincidesWithStateEquality) {
  const Protocol p = protocols::moesi_split();
  const std::vector<CompositeState> states = reachable_states(p);
  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = 0; j < states.size(); ++j) {
      const bool keys_equal =
          CompositeKey::pack(states[i]) == CompositeKey::pack(states[j]);
      EXPECT_EQ(keys_equal, states[i] == states[j])
          << states[i].to_string(p) << " vs " << states[j].to_string(p);
    }
  }
}

TEST(CompositeKey, EqualKeysHashEqualAndDistinctKeysRarelyCollide) {
  const Protocol p = protocols::moesi_split();
  const std::vector<CompositeState> states = reachable_states(p);
  std::unordered_set<std::uint64_t> hashes;
  for (const CompositeState& s : states) {
    const CompositeKey k = CompositeKey::pack(s);
    EXPECT_EQ(k.hash(), CompositeKey::pack(s).hash());
    hashes.insert(k.hash());
  }
  // All reachable MOESISplit states are distinct canonical states; a
  // quality hash should separate essentially all of them.
  EXPECT_GE(hashes.size(), states.size() - states.size() / 64);
}

TEST(CompositeKey, MasksAreNecessaryConditionsForCovering) {
  // The containment index prunes with keys(a) ⊆ keys(b) and
  // definite(b) ⊆ keys(a); if either rejected a pair that covered_by
  // accepts, the index would silently drop real containments.
  for (const protocols::NamedProtocol& np : protocols::all()) {
    const Protocol p = np.factory();
    const std::vector<CompositeState> states = reachable_states(p);
    for (const CompositeState& a : states) {
      const CompositeKey::ClassMasks ma = CompositeKey::masks(a);
      for (const CompositeState& b : states) {
        if (!a.covered_by(b)) continue;
        const CompositeKey::ClassMasks mb = CompositeKey::masks(b);
        EXPECT_EQ(ma.keys & ~mb.keys, 0u)
            << np.name << ": keys(a) ⊄ keys(b) for a covered pair";
        EXPECT_EQ(mb.definite & ~ma.keys, 0u)
            << np.name << ": definite(b) ⊄ keys(a) for a covered pair";
      }
    }
  }
}

TEST(CompositeKey, TagDistinguishesMDataAndLevel) {
  const Protocol p = protocols::illinois();
  const CompositeState fresh =
      CompositeState::parse(p, "(Shared+, Inv*) level=many");
  const CompositeState obsolete =
      CompositeState::parse(p, "(Shared+, Inv*) mem=obsolete level=many");
  const CompositeState one =
      CompositeState::parse(p, "(Shared, Inv*) level=one");
  EXPECT_FALSE(CompositeKey::pack(fresh) == CompositeKey::pack(obsolete));
  EXPECT_FALSE(CompositeKey::pack(fresh) == CompositeKey::pack(one));
}

}  // namespace
}  // namespace ccver
