/// \file test_verifier.cpp
/// The verification front-end: invariant predicates, the Figure-4 global
/// transition diagram (nodes, edges, attribute vectors), counterexample
/// paths, report rendering, and the systematic mutation study.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/verifier.hpp"
#include "enumeration/enumerator.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  const Protocol p = protocols::illinois();

  [[nodiscard]] CompositeState parse(std::string_view text) const {
    return CompositeState::parse(p, text);
  }
};

// -------------------------------------------------------------- invariants

TEST_F(VerifierTest, DataConsistencyFlagsReadableObsoleteCopies) {
  const Invariant inv = Invariant::data_consistency();
  EXPECT_FALSE(inv.check(p, parse("(Shared+, Inv*) level=many")).has_value());
  const auto v = inv.check(
      p, parse("(Shared:obsolete, Dirty, Inv*) mem=obsolete level=many"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "data-consistency");
}

TEST_F(VerifierTest, NoLostValueFlagsStrandedMemory) {
  const Invariant inv = Invariant::no_lost_value();
  EXPECT_FALSE(inv.check(p, parse("(Inv+)")).has_value());
  EXPECT_FALSE(
      inv.check(p, parse("(Dirty, Inv*) mem=obsolete")).has_value());
  EXPECT_TRUE(inv.check(p, parse("(Inv+) mem=obsolete")).has_value());
}

TEST_F(VerifierTest, ExclusivityFlagsCoexistenceAndDuplication) {
  const StateId d = *p.find_state("Dirty");
  const Invariant inv = Invariant::exclusivity(d);
  EXPECT_FALSE(inv.check(p, parse("(Dirty, Inv*) mem=obsolete")).has_value());
  EXPECT_TRUE(
      inv.check(p, parse("(Dirty, Shared, Inv*) mem=obsolete level=many"))
          .has_value());
  EXPECT_TRUE(
      inv.check(p,
                parse("(Dirty, Dirty:obsolete, Inv*) mem=obsolete level=many"))
          .has_value());
}

TEST_F(VerifierTest, UniquenessToleratesCoexistence) {
  const StateId sh = *p.find_state("Shared");
  const Invariant inv = Invariant::uniqueness(sh);
  // Shared is not unique in Illinois, but the predicate itself should
  // tolerate coexistence with other states and reject duplication.
  EXPECT_FALSE(inv.check(p, parse("(Shared, Inv+)")).has_value());
  EXPECT_TRUE(
      inv.check(p, parse("(Shared+, Inv*) level=many")).has_value());
}

TEST_F(VerifierTest, StandardBatteryMatchesDeclarations) {
  const auto battery = Invariant::standard_for(p);
  // data-consistency + no-lost-value + 2 exclusive states (VE, Dirty).
  EXPECT_EQ(battery.size(), 4u);
}

TEST_F(VerifierTest, CustomInvariantIsChecked) {
  Verifier verifier(p);
  verifier.add_invariant(Invariant(
      "no-dirty-ever", [](const Protocol& proto, const CompositeState& s)
                           -> std::optional<std::string> {
        const auto d = proto.find_state("Dirty");
        if (s.rep_of_state(*d) != Rep::Zero) return "a Dirty copy exists";
        return std::nullopt;
      }));
  const VerificationReport report = verifier.verify();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.errors.front().violation.invariant, "no-dirty-ever");
}

// ------------------------------------------------------------- the diagram

class Figure4 : public VerifierTest {
 protected:
  const VerificationReport report = Verifier(p).verify();

  [[nodiscard]] std::size_t node_of(std::string_view text) const {
    const auto idx = report.graph.find_containing(parse(text));
    EXPECT_TRUE(idx.has_value()) << text;
    return *idx;
  }

  [[nodiscard]] bool has_edge(std::string_view from, std::string_view to,
                              std::string_view label) const {
    const std::size_t f = node_of(from);
    const std::size_t t = node_of(to);
    return std::any_of(report.graph.edges().begin(),
                       report.graph.edges().end(),
                       [&](const ReachabilityGraph::Edge& e) {
                         return e.from == f && e.to == t &&
                                e.label.to_string(p) == label;
                       });
  }
};

TEST_F(Figure4, HasTheFivePaperNodes) {
  EXPECT_EQ(report.graph.nodes().size(), 5u);
}

TEST_F(Figure4, ReproducesThePaperEdges) {
  // The edge list of Figure 4 (labels are op_originatorstate).
  EXPECT_TRUE(has_edge("(Inv+)", "(ValidExclusive, Inv*)", "R_invalid"));
  EXPECT_TRUE(has_edge("(Inv+)", "(Dirty, Inv*) mem=obsolete", "W_invalid"));
  EXPECT_TRUE(has_edge("(ValidExclusive, Inv*)", "(Inv+)",
                       "Z_validexclusive"));
  EXPECT_TRUE(has_edge("(ValidExclusive, Inv*)",
                       "(Dirty, Inv*) mem=obsolete", "W_validexclusive"));
  EXPECT_TRUE(has_edge("(ValidExclusive, Inv*)",
                       "(Shared+, Inv*) level=many", "R_invalid"));
  EXPECT_TRUE(has_edge("(Dirty, Inv*) mem=obsolete", "(Inv+)", "Z_dirty"));
  EXPECT_TRUE(has_edge("(Dirty, Inv*) mem=obsolete",
                       "(Shared+, Inv*) level=many", "R_invalid"));
  EXPECT_TRUE(has_edge("(Shared+, Inv*) level=many", "(Shared, Inv+)",
                       "Z_shared"));
  EXPECT_TRUE(has_edge("(Shared+, Inv*) level=many",
                       "(Dirty, Inv*) mem=obsolete", "W_shared"));
  EXPECT_TRUE(has_edge("(Shared, Inv+)", "(Inv+)", "Z_shared"));
  EXPECT_TRUE(has_edge("(Shared, Inv+)", "(Shared+, Inv*) level=many",
                       "R_invalid"));
}

TEST_F(Figure4, AttributeTableMatchesThePaper) {
  // Figure 4's table: sharing vector, cdata vector and mdata per state
  // (class order: valid classes first, as the paper prints them).
  const auto& g = report.graph;
  const auto row = [&](std::string_view text) {
    const CompositeState s = parse(text);
    return ReachabilityGraph::sharing_vector(p, s) + " " +
           ReachabilityGraph::cdata_vector(p, s) + " " +
           std::string(to_string(s.mdata()));
  };
  (void)g;
  EXPECT_EQ(row("(Inv+)"), "(false) (nodata) fresh");
  EXPECT_EQ(row("(ValidExclusive, Inv*)"),
            "(false, true) (fresh, nodata) fresh");
  EXPECT_EQ(row("(Dirty, Inv*) mem=obsolete"),
            "(false, true) (fresh, nodata) obsolete");
  EXPECT_EQ(row("(Shared+, Inv*) level=many"),
            "(true, true) (fresh, nodata) fresh");
  EXPECT_EQ(row("(Shared, Inv+)"), "(false, true) (fresh, nodata) fresh");
}

TEST_F(Figure4, NStepEdgesAreMarked) {
  // Rep^n_shared: (Shared+, Inv*) -> (Shared, Inv+) collapses a rule-4(a)
  // chain; R^n_inv: (V-Ex, Inv*) -> (Shared+, Inv*) a rule-4(b) chain.
  const auto& edges = report.graph.edges();
  const auto marked = [&](std::string_view from, std::string_view to,
                          std::string_view label) {
    const std::size_t f = node_of(from);
    const std::size_t t = node_of(to);
    for (const ReachabilityGraph::Edge& e : edges) {
      if (e.from == f && e.to == t && e.label.to_string(p) == label) {
        return e.n_steps;
      }
    }
    return false;
  };
  EXPECT_TRUE(marked("(Shared+, Inv*) level=many", "(Shared, Inv+)",
                     "Z_shared"));
  EXPECT_TRUE(marked("(ValidExclusive, Inv*)", "(Shared+, Inv*) level=many",
                     "R_invalid"));
  EXPECT_FALSE(marked("(Inv+)", "(ValidExclusive, Inv*)", "R_invalid"));
}

TEST_F(Figure4, DotOutputNamesEveryNode) {
  const std::string dot = report.graph.to_dot(p);
  EXPECT_NE(dot.find("digraph \"Illinois\""), std::string::npos);
  for (const CompositeState& n : report.graph.nodes()) {
    EXPECT_NE(dot.find(n.to_string(p)), std::string::npos);
  }
}

TEST_F(Figure4, RenderedFigureContainsTheTable) {
  const std::string figure = report.graph.render_figure(p);
  EXPECT_NE(figure.find("5 essential states"), std::string::npos);
  EXPECT_NE(figure.find("(Shared+, Invalid*)"), std::string::npos);
  EXPECT_NE(figure.find("| (true, true)"), std::string::npos);
}

// -------------------------------------------------------- counterexamples

TEST(Counterexamples, PathsStartAtInitialAndEndAtErroneousState) {
  for (const protocols::NamedMutant& variant : protocols::buggy_variants()) {
    const Protocol p = variant.factory();
    Verifier::Options opt;
    opt.build_graph = false;
    const VerificationReport report = Verifier(p, opt).verify();
    ASSERT_FALSE(report.ok) << variant.name;
    for (const VerificationError& err : report.errors) {
      ASSERT_GE(err.path.steps.size(), 2u) << variant.name;
      EXPECT_EQ(err.path.steps.front().state, "(Invalid+) mem=fresh");
      EXPECT_TRUE(err.path.steps.front().label.empty());
      EXPECT_EQ(err.path.steps.back().state, err.state.to_string(p));
      for (std::size_t i = 1; i < err.path.steps.size(); ++i) {
        EXPECT_FALSE(err.path.steps[i].label.empty());
      }
    }
  }
}

TEST(Counterexamples, MaxErrorsIsHonored) {
  const Protocol p = protocols::illinois_no_invalidate_on_write_hit();
  Verifier::Options opt;
  opt.max_errors = 2;
  opt.build_graph = false;
  const VerificationReport report = Verifier(p, opt).verify();
  EXPECT_FALSE(report.ok);
  EXPECT_LE(report.errors.size(), 2u);
}

TEST(Reports, SummaryMentionsVerdictAndCounts) {
  const Protocol ok_protocol = protocols::illinois();
  const auto ok_report = Verifier(ok_protocol).verify();
  const std::string ok_text = ok_report.summary(ok_protocol);
  EXPECT_NE(ok_text.find("VERIFIED"), std::string::npos);
  EXPECT_NE(ok_text.find("5 essential states"), std::string::npos);

  const Protocol bad_protocol = protocols::dragon_no_broadcast();
  Verifier::Options opt;
  opt.build_graph = false;
  const auto bad_report = Verifier(bad_protocol, opt).verify();
  const std::string bad_text = bad_report.summary(bad_protocol);
  EXPECT_NE(bad_text.find("ERRONEOUS"), std::string::npos);
  EXPECT_NE(bad_text.find("data-consistency"), std::string::npos);
}

// ---------------------------------------------------------- mutation study

TEST(MutationStudy, EnumeratesAReasonableMutantPool) {
  const auto mutants = ProtocolMutator::enumerate(protocols::illinois());
  EXPECT_GE(mutants.size(), 20u);
  for (const ProtocolMutant& m : mutants) {
    EXPECT_FALSE(m.description.empty());
    EXPECT_LT(m.rule_index, protocols::illinois().rules().size());
  }
}

TEST(MutationStudy, EveryMutantIsKilledOrConcretelySafe) {
  // A mutant the symbolic verifier does not kill must be genuinely safe:
  // some single-rule mutations only degrade performance (e.g. filling
  // Shared instead of Valid-Exclusive turns Illinois into an MSI-like
  // protocol). For every survivor, concrete enumeration at n = 3 must
  // agree that no erroneous state is reachable -- the symbolic verdict and
  // the exhaustive verdict may never disagree.
  const Protocol original = protocols::illinois();

  std::size_t killed = 0;
  std::size_t survived = 0;
  for (const ProtocolMutant& m : ProtocolMutator::enumerate(original)) {
    Verifier::Options opt;
    opt.build_graph = false;
    const VerificationReport report = Verifier(m.protocol, opt).verify();
    if (!report.ok) {
      ++killed;
      continue;
    }
    ++survived;
    Enumerator::Options eopt;
    eopt.n_caches = 3;
    const EnumerationResult concrete = Enumerator(m.protocol, eopt).run();
    EXPECT_TRUE(concrete.errors.empty())
        << "symbolic verifier missed a concrete error: " << m.description;
  }
  EXPECT_GT(killed, 0u);
  // Most single-rule defects in Illinois are observable.
  EXPECT_GT(killed, survived);
}

}  // namespace
}  // namespace ccver
