/// \file test_expansion.cpp
/// The symbolic expansion engine: successor generation checked against the
/// hand-derivable transitions of Appendix A.2, the Figure-3 algorithm's
/// results for the Illinois protocol (Section 4), monotonicity (Lemma 2),
/// and the bookkeeping (visits, archive, trace) the experiments rely on.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/expansion.hpp"
#include "protocols/mutation.hpp"
#include "protocols/protocols.hpp"

namespace ccver {
namespace {

class IllinoisExpansion : public ::testing::Test {
 protected:
  const Protocol p = protocols::illinois();

  [[nodiscard]] CompositeState parse(std::string_view text) const {
    return CompositeState::parse(p, text);
  }

  /// All successor states of `from` reached via (op name, origin state).
  [[nodiscard]] std::vector<CompositeState> successors_via(
      const CompositeState& from, std::string_view op_name,
      std::string_view origin) const {
    const OpId op = *p.find_op(std::string(op_name));
    const auto origin_state = p.find_state(origin);
    EXPECT_TRUE(origin_state.has_value()) << origin;
    std::vector<CompositeState> out;
    for (const Successor& s : successors(p, from)) {
      if (s.label.op == op && s.label.origin_state == *origin_state) {
        out.push_back(s.state);
      }
    }
    return out;
  }

  void expect_single(const CompositeState& from, std::string_view op,
                     std::string_view origin, std::string_view expected) {
    const auto out = successors_via(from, op, origin);
    ASSERT_EQ(out.size(), 1u) << "from " << from.to_string(p) << " via "
                              << op << "_" << origin;
    EXPECT_EQ(out[0], parse(expected))
        << "got " << out[0].to_string(p) << ", expected " << expected;
  }
};

// ------------------------------------ Appendix A.2, line by line (from s0)

TEST_F(IllinoisExpansion, InitialState) {
  const CompositeState s0 = parse("(Inv+)");
  // (Inv+) --R_inv--> (V-Ex, Inv*)   [sharing-detection false]
  expect_single(s0, "R", "Invalid", "(ValidExclusive, Inv*)");
  // (Inv+) --W_inv--> (Dirty, Inv*)
  expect_single(s0, "W", "Invalid", "(Dirty, Inv*) mem=obsolete");
  // Replacement of an invalid block is a no-op: exactly 2 successors.
  EXPECT_EQ(successors(p, s0).size(), 2u);
}

TEST_F(IllinoisExpansion, DirtyState) {
  const CompositeState s2 = parse("(Dirty, Inv*) mem=obsolete");
  expect_single(s2, "Z", "Dirty", "(Inv+)");  // write-back refreshes memory
  expect_single(s2, "W", "Dirty", "(Dirty, Inv*) mem=obsolete");
  expect_single(s2, "R", "Dirty", "(Dirty, Inv*) mem=obsolete");
  // Read miss by another cache: dirty holder supplies AND updates memory.
  expect_single(s2, "R", "Invalid", "(Shared+, Inv*) level=many");
  expect_single(s2, "W", "Invalid", "(Dirty, Inv+) mem=obsolete");
}

TEST_F(IllinoisExpansion, ValidExclusiveState) {
  const CompositeState s1 = parse("(ValidExclusive, Inv*)");
  expect_single(s1, "Z", "ValidExclusive", "(Inv+)");
  expect_single(s1, "W", "ValidExclusive", "(Dirty, Inv*) mem=obsolete");
  expect_single(s1, "R", "ValidExclusive", "(ValidExclusive, Inv*)");
  expect_single(s1, "R", "Invalid", "(Shared+, Inv*) level=many");
  expect_single(s1, "W", "Invalid", "(Dirty, Inv+) mem=obsolete");
}

TEST_F(IllinoisExpansion, SharedPlusState) {
  const CompositeState s3 = parse("(Shared+, Inv*) level=many");
  expect_single(s3, "R", "Shared", "(Shared+, Inv*) level=many");
  expect_single(s3, "W", "Shared", "(Dirty, Inv*) mem=obsolete");
  expect_single(s3, "R", "Invalid", "(Shared+, Inv*) level=many");
  expect_single(s3, "W", "Invalid", "(Dirty, Inv+) mem=obsolete");
  // Replacement branches on the remaining copy count (rule 4(b) footprint):
  // either one copy remains ((Shared, Inv+), the paper's s4) or several do.
  const auto reps = successors_via(s3, "Z", "Shared");
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_NE(std::find(reps.begin(), reps.end(), parse("(Shared, Inv+)")),
            reps.end());
  EXPECT_NE(std::find(reps.begin(), reps.end(),
                      parse("(Shared+, Inv+) level=many")),
            reps.end());
}

TEST_F(IllinoisExpansion, SharedSingletonState) {
  const CompositeState s4 = parse("(Shared, Inv+)");
  expect_single(s4, "Z", "Shared", "(Inv+)");
  // Write hit with no other copy: silent-ish upgrade (f = false).
  expect_single(s4, "W", "Shared", "(Dirty, Inv+) mem=obsolete");
  expect_single(s4, "R", "Shared", "(Shared, Inv+)");
  expect_single(s4, "R", "Invalid", "(Shared+, Inv*) level=many");
  expect_single(s4, "W", "Invalid", "(Dirty, Inv+) mem=obsolete");
}

TEST_F(IllinoisExpansion, SharingValueSeenByOriginator) {
  // From s4 the Shared holder sees f=false, the Invalid caches see f=true.
  const CompositeState s4 = parse("(Shared, Inv+)");
  for (const Successor& s : successors(p, s4)) {
    const bool origin_valid = p.is_valid_state(s.label.origin_state);
    EXPECT_EQ(s.label.sharing, !origin_valid);
  }
}

// ------------------------------------------------ the Figure-3 run (Sec. 4)

TEST_F(IllinoisExpansion, FiveEssentialStatesOfSectionFour) {
  const ExpansionResult r = SymbolicExpander(p).run();
  ASSERT_EQ(r.essential.size(), 5u);

  const std::vector<CompositeState> expected = {
      parse("(Inv+)"),
      parse("(ValidExclusive, Inv*)"),
      parse("(Dirty, Inv*) mem=obsolete"),
      parse("(Shared+, Inv*) level=many"),
      parse("(Shared, Inv+)"),
  };
  for (const CompositeState& e : expected) {
    EXPECT_NE(std::find(r.essential.begin(), r.essential.end(), e),
              r.essential.end())
        << "missing essential state " << e.to_string(p);
  }
}

TEST_F(IllinoisExpansion, VisitCountMatchesThePaperUpToBranching) {
  // The paper reports 22 state visits (Appendix A.2). Our single-step
  // engine counts 23: the replacement from (Shared+, Inv*) explicitly
  // produces both rule-4(b) branches where the paper lists one N-step
  // line, and hit self-loops are all counted.
  const ExpansionResult r = SymbolicExpander(p).run();
  EXPECT_EQ(r.stats.visits, 23u);
  EXPECT_EQ(r.stats.expansions, 5u);
}

TEST_F(IllinoisExpansion, ArchiveRootsAtInitialState) {
  const ExpansionResult r = SymbolicExpander(p).run();
  ASSERT_FALSE(r.archive.empty());
  EXPECT_EQ(r.archive[0].state, parse("(Inv+)"));
  EXPECT_EQ(r.archive[0].parent, -1);
  for (std::size_t i = 1; i < r.archive.size(); ++i) {
    ASSERT_GE(r.archive[i].parent, 0);
    EXPECT_LT(r.archive[i].parent, static_cast<std::int64_t>(i));
  }
}

TEST_F(IllinoisExpansion, TraceRecordsEveryVisit) {
  SymbolicExpander::Options opt;
  opt.record_trace = true;
  const ExpansionResult r = SymbolicExpander(p, opt).run();
  EXPECT_EQ(r.trace.size(), r.stats.visits);
  // Every trace line originates from a state that was expanded.
  for (const VisitRecord& v : r.trace) {
    EXPECT_FALSE(v.from.classes().empty());
  }
}

TEST_F(IllinoisExpansion, MaxVisitsStopsWithPartialOutcome) {
  SymbolicExpander::Options opt;
  opt.max_visits = 3;
  const ExpansionResult r = SymbolicExpander(p, opt).run();
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.stop_reason, StopReason::VisitBudget);
  // The in-flight expansion completes, so the count may overshoot the
  // valve -- but only by one state's successors.
  EXPECT_GE(r.stats.visits, 3U);
  // Both engines latch the same stop.
  opt.reference_engine = true;
  const ExpansionResult ref = SymbolicExpander(p, opt).run();
  EXPECT_EQ(ref.outcome, Outcome::Partial);
  EXPECT_EQ(ref.stop_reason, StopReason::VisitBudget);
  EXPECT_EQ(ref.stats.visits, r.stats.visits);
}

// ------------------------------------------------------- Lemma 2 in action

TEST_F(IllinoisExpansion, ExpansionIsMonotoneUnderContainment) {
  // For contained pairs S1 in S2, every successor of S1 must be contained
  // in some successor of S2 (or in S2 itself, which the algorithm keeps).
  const std::vector<std::pair<CompositeState, CompositeState>> pairs = {
      {parse("(Dirty, Inv+) mem=obsolete"), parse("(Dirty, Inv*) mem=obsolete")},
      {parse("(Shared, Shared, Inv+)"), parse("(Shared+, Inv*) level=many")},
  };
  for (const auto& [s1, s2] : pairs) {
    ASSERT_TRUE(s1.contained_in(s2));
    const auto succ2 = successors(p, s2);
    for (const Successor& a : successors(p, s1)) {
      const bool covered =
          a.state.contained_in(s2) ||
          std::any_of(succ2.begin(), succ2.end(), [&a](const Successor& b) {
            return a.state.contained_in(b.state);
          });
      EXPECT_TRUE(covered) << a.state.to_string(p) << " (successor of "
                           << s1.to_string(p) << ") escapes successors of "
                           << s2.to_string(p);
    }
  }
}

// -------------------------------------------- whole-library golden numbers

struct GoldenParam {
  const char* name;
  std::size_t essential;
  std::size_t visits;
};

class GoldenExpansion : public ::testing::TestWithParam<GoldenParam> {};

TEST_P(GoldenExpansion, EssentialAndVisitCountsAreStable) {
  const Protocol p = protocols::by_name(GetParam().name);
  const ExpansionResult r = SymbolicExpander(p).run();
  EXPECT_EQ(r.essential.size(), GetParam().essential);
  EXPECT_EQ(r.stats.visits, GetParam().visits);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, GoldenExpansion,
    ::testing::Values(GoldenParam{"Illinois", 5, 23},
                      GoldenParam{"WriteOnce", 5, 23},
                      GoldenParam{"Synapse", 4, 18},
                      GoldenParam{"Berkeley", 6, 34},
                      GoldenParam{"Firefly", 5, 23},
                      GoldenParam{"Dragon", 7, 38},
                      GoldenParam{"MSI", 4, 18},
                      GoldenParam{"MESI", 5, 23},
                      GoldenParam{"MOESI", 7, 39},
                      GoldenParam{"IllinoisSplit", 12, 134},
                      GoldenParam{"MOESISplit", 27, 454}),
    [](const ::testing::TestParamInfo<GoldenParam>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(Expansion, MesiReproducesIllinoisShape) {
  // MESI is Illinois under renamed states: same essential-state count,
  // same visit count, same edge count -- the "similarities between
  // protocols" the paper's diagrams expose.
  const ExpansionResult illinois =
      SymbolicExpander(protocols::illinois()).run();
  const ExpansionResult mesi = SymbolicExpander(protocols::mesi()).run();
  EXPECT_EQ(illinois.essential.size(), mesi.essential.size());
  EXPECT_EQ(illinois.stats.visits, mesi.stats.visits);
}

TEST(Expansion, SeededRunFromEssentialStateIsClosed) {
  // Expanding from any essential state must converge onto a subset of the
  // same family portfolio (the graph is strongly connected for these
  // protocols, so it is in fact the same set).
  const Protocol p = protocols::illinois();
  const ExpansionResult full = SymbolicExpander(p).run();
  for (const CompositeState& seed : full.essential) {
    const ExpansionResult seeded = SymbolicExpander(p).run(seed);
    for (const CompositeState& s : seeded.essential) {
      const bool covered = std::any_of(
          full.essential.begin(), full.essential.end(),
          [&s](const CompositeState& e) { return s.contained_in(e); });
      EXPECT_TRUE(covered) << s.to_string(p);
    }
  }
}

}  // namespace
}  // namespace ccver
